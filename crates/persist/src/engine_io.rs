//! The file layer and the save/load/recover orchestration: artifact
//! headers and checksum trailers, plus the functions that take a live
//! engine apart into `.agqplan` + `.agqsnap` files and put one back
//! together — optionally rolling it forward through a WAL tail.

use crate::codec::ByteReader;
use crate::crc32::crc32;
use crate::error::{PersistError, RecoveryReport};
use crate::plan::{self, LoadedPlan, PlanRefs};
use crate::snapshot::{self, ShardingMeta, SnapshotBundle};
use crate::value::PersistValue;
use crate::wal::{self, FileWal};
use agq_circuit::PermMaint;
use agq_core::{QueryEngine, TupleUpdate};
use agq_enumerate::{
    AnswerIndex, EnumMachine, EnumQueryEngine, ServeError, ShardStateDump, ShardedEngine,
};
use agq_semiring::Semiring;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

/// Magic of a `.agqplan` file.
pub const PLAN_MAGIC: [u8; 4] = *b"AGQP";
/// Magic of a `.agqsnap` file.
pub const SNAP_MAGIC: [u8; 4] = *b"AGQS";
/// Format version this build reads and writes (plan and snapshot files;
/// the WAL versions independently).
pub const FORMAT_VERSION: u32 = 1;

/// Sizes of the artifacts one save produced, for capacity planning and
/// the persistence benchmarks.
#[derive(Clone, Copy, Debug, Default)]
pub struct SaveStats {
    /// Bytes written to the `.agqplan` file (0 when not saved).
    pub plan_bytes: u64,
    /// Bytes written to the `.agqsnap` file (0 when not saved).
    pub snapshot_bytes: u64,
}

fn write_artifact(
    path: impl AsRef<Path>,
    magic: [u8; 4],
    carrier: u8,
    body: &[u8],
) -> Result<u64, PersistError> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    f.write_all(&magic)?;
    f.write_all(&FORMAT_VERSION.to_le_bytes())?;
    f.write_all(&[carrier])?;
    f.write_all(body)?;
    f.write_all(&crc32(body).to_le_bytes())?;
    f.flush()?;
    Ok(9 + body.len() as u64 + 4)
}

fn read_artifact(
    path: impl AsRef<Path>,
    magic: [u8; 4],
    carrier: u8,
) -> Result<Vec<u8>, PersistError> {
    let buf = std::fs::read(path)?;
    if buf.len() < 13 {
        return Err(PersistError::Corrupt("artifact shorter than its framing"));
    }
    let mut r = ByteReader::new(&buf);
    let found: [u8; 4] = r.raw(4)?.try_into().unwrap();
    if found != magic {
        return Err(PersistError::BadMagic {
            expected: magic,
            found,
        });
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(PersistError::VersionMismatch {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let tag = r.u8()?;
    if tag != carrier {
        return Err(PersistError::CarrierMismatch {
            found: tag,
            expected: carrier,
        });
    }
    let body = &buf[9..buf.len() - 4];
    let trailer = u32::from_le_bytes(buf[buf.len() - 4..].try_into().unwrap());
    if crc32(body) != trailer {
        return Err(PersistError::ChecksumMismatch);
    }
    Ok(body.to_vec())
}

// ---------------------------------------------------------------------
// plan files
// ---------------------------------------------------------------------

/// Write the shared immutable plan of `engine` to a `.agqplan` file.
pub fn save_plan<S, P>(
    engine: &EnumQueryEngine<S, P>,
    path: impl AsRef<Path>,
) -> Result<u64, PersistError>
where
    S: Semiring + PersistValue,
    P: PermMaint<S>,
{
    let index = engine.answer_index();
    let body = plan::write_bundle(&PlanRefs {
        compiled: engine.query_engine().compiled(),
        enum_circuit: index.machine().circuit(),
        enum_slots: index.slot_registry(),
        gen_weights: index.generator_weights(),
        sig: index.signature(),
        domain_size: index.domain_size(),
        arity: engine.arity(),
        dynamic: index.is_dynamic(),
    });
    write_artifact(path, PLAN_MAGIC, S::TAG, &body)
}

/// Write the shared immutable plan of a sharded engine to a `.agqplan`
/// file (every shard references the same plan, so shard 0's is *the*
/// plan).
pub fn save_sharded_plan<S, P>(
    engine: &ShardedEngine<S, P>,
    path: impl AsRef<Path>,
) -> Result<u64, PersistError>
where
    S: Semiring + PersistValue,
    P: PermMaint<S>,
{
    let arity = engine.arity();
    let body = engine.with_shard(0, |qe, index| {
        plan::write_bundle(&PlanRefs {
            compiled: qe.compiled(),
            enum_circuit: index.machine().circuit(),
            enum_slots: index.slot_registry(),
            gen_weights: index.generator_weights(),
            sig: index.signature(),
            domain_size: index.domain_size(),
            arity,
            dynamic: index.is_dynamic(),
        })
    });
    write_artifact(path, PLAN_MAGIC, S::TAG, &body)
}

/// Load a `.agqplan` file and rebuild the derived evaluation and
/// enumeration plans (one linear pass each — this is the step that
/// replaces recompilation at cold start).
pub fn load_plan<S: PersistValue>(path: impl AsRef<Path>) -> Result<LoadedPlan<S>, PersistError> {
    let body = read_artifact(path, PLAN_MAGIC, S::TAG)?;
    plan::read_bundle::<S>(&body).map(LoadedPlan::from_bundle)
}

// ---------------------------------------------------------------------
// snapshot files
// ---------------------------------------------------------------------

/// Write the mutable state of `engine` to a `.agqsnap` file, current
/// through the engine's `last_lsn`.
pub fn save_snapshot<S, P>(
    engine: &EnumQueryEngine<S, P>,
    path: impl AsRef<Path>,
) -> Result<u64, PersistError>
where
    S: Semiring + PersistValue,
    P: PermMaint<S>,
{
    agq_core::fault::io_point("snapshot.save")?;
    let eval = engine.query_engine().evaluator();
    let bundle = SnapshotBundle {
        last_lsn: engine.last_lsn(),
        sharding: None,
        shards: vec![ShardStateDump {
            slot_values: eval.slot_values().to_vec(),
            gate_values: eval.gate_values().to_vec(),
            machine: engine.answer_index().machine().dump_state(),
        }],
    };
    write_artifact(path, SNAP_MAGIC, S::TAG, &snapshot::write_snapshot(&bundle))
}

/// Write every shard's mutable state to a `.agqsnap` file under one
/// consistent whole-engine snapshot (ordered all-shards read lock, so
/// the dump is point-in-time across shards).
pub fn save_sharded_snapshot<S, P>(
    engine: &ShardedEngine<S, P>,
    path: impl AsRef<Path>,
) -> Result<u64, PersistError>
where
    S: Semiring + PersistValue,
    P: PermMaint<S>,
{
    agq_core::fault::io_point("snapshot.save")?;
    let (last_lsn, shards) =
        engine
            .snapshot_states()
            .map_err(|ServeError::ShardUnavailable { shards }| {
                PersistError::ShardsUnavailable(shards)
            })?;
    let bundle = SnapshotBundle {
        last_lsn,
        sharding: Some(ShardingMeta {
            components: engine.components().clone(),
            component_local: engine.component_local(),
        }),
        shards,
    };
    write_artifact(path, SNAP_MAGIC, S::TAG, &snapshot::write_snapshot(&bundle))
}

/// Save both halves of an engine: plan + snapshot.
pub fn save_engine<S, P>(
    engine: &EnumQueryEngine<S, P>,
    plan_path: impl AsRef<Path>,
    snap_path: impl AsRef<Path>,
) -> Result<SaveStats, PersistError>
where
    S: Semiring + PersistValue,
    P: PermMaint<S>,
{
    Ok(SaveStats {
        plan_bytes: save_plan(engine, plan_path)?,
        snapshot_bytes: save_snapshot(engine, snap_path)?,
    })
}

/// Save both halves of a sharded engine: plan + whole-lockset snapshot.
pub fn save_sharded<S, P>(
    engine: &ShardedEngine<S, P>,
    plan_path: impl AsRef<Path>,
    snap_path: impl AsRef<Path>,
) -> Result<SaveStats, PersistError>
where
    S: Semiring + PersistValue,
    P: PermMaint<S>,
{
    Ok(SaveStats {
        plan_bytes: save_sharded_plan(engine, plan_path)?,
        snapshot_bytes: save_sharded_snapshot(engine, snap_path)?,
    })
}

fn restore_shard<S, P>(
    lp: &LoadedPlan<S>,
    dump: ShardStateDump<S>,
) -> Result<(QueryEngine<S, P>, AnswerIndex), PersistError>
where
    S: Semiring + PersistValue,
    P: PermMaint<S>,
{
    let qe = QueryEngine::from_saved(
        Arc::clone(&lp.compiled),
        Arc::clone(&lp.eval_plan),
        dump.slot_values,
        dump.gate_values,
    )?;
    let machine = EnumMachine::from_saved(Arc::clone(&lp.enum_plan), dump.machine)
        .map_err(PersistError::Corrupt)?;
    let index = AnswerIndex::from_saved_parts(
        machine,
        Arc::clone(&lp.enum_slots),
        lp.arity,
        lp.dynamic,
        Arc::clone(&lp.gen_weights),
        Arc::clone(&lp.sig),
        lp.domain_size,
    );
    Ok((qe, index))
}

/// Reassemble a single engine from a plan and a snapshot file. The
/// returned engine is current through the snapshot's LSN; use
/// [`recover_engine`] to also roll a WAL tail forward.
pub fn load_engine<S, P>(
    plan_path: impl AsRef<Path>,
    snap_path: impl AsRef<Path>,
) -> Result<EnumQueryEngine<S, P>, PersistError>
where
    S: Semiring + PersistValue,
    P: PermMaint<S>,
{
    let lp = load_plan::<S>(plan_path)?;
    let body = read_artifact(snap_path, SNAP_MAGIC, S::TAG)?;
    let snap = snapshot::read_snapshot::<S>(&body)?;
    if snap.sharding.is_some() {
        return Err(PersistError::Corrupt(
            "snapshot is sharded; load it with load_sharded",
        ));
    }
    let mut shards = snap.shards;
    let dump = shards.pop().expect("validated single-shard snapshot");
    let (qe, index) = restore_shard::<S, P>(&lp, dump)?;
    Ok(EnumQueryEngine::from_parts(qe, index, snap.last_lsn))
}

/// Reassemble a sharded engine from a plan and a snapshot file.
pub fn load_sharded<S, P>(
    plan_path: impl AsRef<Path>,
    snap_path: impl AsRef<Path>,
) -> Result<ShardedEngine<S, P>, PersistError>
where
    S: Semiring + PersistValue,
    P: PermMaint<S>,
{
    let lp = load_plan::<S>(plan_path)?;
    let body = read_artifact(snap_path, SNAP_MAGIC, S::TAG)?;
    let snap = snapshot::read_snapshot::<S>(&body)?;
    let meta = match snap.sharding {
        Some(meta) => meta,
        None => {
            return Err(PersistError::Corrupt(
                "snapshot is unsharded; load it with load_engine",
            ))
        }
    };
    let mut states = Vec::with_capacity(snap.shards.len());
    for dump in snap.shards {
        states.push(restore_shard::<S, P>(&lp, dump)?);
    }
    ShardedEngine::from_saved_parts(
        meta.components,
        meta.component_local,
        lp.arity,
        states,
        snap.last_lsn,
    )
    .map_err(PersistError::Corrupt)
}

fn replay_batches(
    scan: wal::WalScan,
    snapshot_lsn: u64,
    mut apply: impl FnMut(&wal::WalBatch) -> Result<(), PersistError>,
) -> Result<RecoveryReport, PersistError> {
    let mut report = wal::report_from_scan(&scan);
    report.snapshot_lsn = snapshot_lsn;
    let mut high = 0u64;
    for batch in &scan.batches {
        if batch.lsn <= high {
            // Not monotonically increasing: a duplicated tail block
            // (e.g. a storage layer re-appending the last batch).
            report.batches_skipped += 1;
            continue;
        }
        high = batch.lsn;
        if batch.lsn <= snapshot_lsn {
            continue; // already reflected in the snapshot
        }
        apply(batch)?;
        report.batches_replayed += 1;
        report.updates_replayed += batch.updates.len();
    }
    Ok(report)
}

/// Crash recovery for a single engine: load plan + snapshot, then
/// replay every committed WAL batch sequenced after the snapshot. The
/// returned engine's LSN continues from the highest committed LSN, so
/// re-attaching the (tail-truncated) WAL resumes a consistent sequence.
pub fn recover_engine<S, P>(
    plan_path: impl AsRef<Path>,
    snap_path: impl AsRef<Path>,
    wal_path: impl AsRef<Path>,
) -> Result<(EnumQueryEngine<S, P>, RecoveryReport), PersistError>
where
    S: Semiring + PersistValue,
    P: PermMaint<S>,
{
    let mut engine = load_engine::<S, P>(plan_path, snap_path)?;
    let snapshot_lsn = engine.last_lsn();
    let scan = wal::scan_wal(wal_path)?;
    let wal_last = scan.last_lsn;
    let report = replay_batches(scan, snapshot_lsn, |batch| {
        engine.apply_batch(&batch.updates)?;
        Ok(())
    })?;
    engine.set_last_lsn(snapshot_lsn.max(wal_last));
    Ok((engine, report))
}

/// Crash recovery for a sharded engine: load plan + snapshot, replay
/// the committed WAL tail through the coalescing batch path.
pub fn recover_sharded<S, P>(
    plan_path: impl AsRef<Path>,
    snap_path: impl AsRef<Path>,
    wal_path: impl AsRef<Path>,
) -> Result<(ShardedEngine<S, P>, RecoveryReport), PersistError>
where
    S: Semiring + PersistValue,
    P: PermMaint<S> + Send + Sync,
{
    let engine = load_sharded::<S, P>(plan_path, snap_path)?;
    let snapshot_lsn = engine.last_lsn();
    let scan = wal::scan_wal(wal_path)?;
    let wal_last = scan.last_lsn;
    let report = replay_batches(scan, snapshot_lsn, |batch| {
        engine.apply_batch(&batch.updates)?;
        Ok(())
    })?;
    engine.set_last_lsn(snapshot_lsn.max(wal_last));
    Ok((engine, report))
}

/// Re-hydrate one quarantined shard of a **live** sharded engine and
/// lift its quarantine, without restarting the process or touching the
/// healthy shards.
///
/// The shard's state is rebuilt from the `.agqsnap` file, then rolled
/// forward through every committed WAL batch sequenced after the
/// snapshot — filtered to the updates this shard owns. Because the
/// engine journals write-ahead (a batch is durable before it is
/// applied), this replay also completes the batch whose mid-apply panic
/// caused the quarantine: the rebuilt shard converges to exactly the
/// state it would hold had the panic never happened. The shared
/// immutable plan is borrowed from a healthy shard (every shard
/// references the same `Arc`s), so no `.agqplan` file is needed.
///
/// The rebuilt state must pass [`AnswerIndex::self_check`] before it is
/// installed; on any error the live engine is left untouched (the shard
/// stays quarantined).
pub fn restore_quarantined_shard<S, P>(
    engine: &ShardedEngine<S, P>,
    shard: usize,
    snap_path: impl AsRef<Path>,
    wal_path: impl AsRef<Path>,
) -> Result<RecoveryReport, PersistError>
where
    S: Semiring + PersistValue,
    P: PermMaint<S>,
{
    let plan = engine
        .with_healthy_shard(|qe, index| {
            (
                Arc::clone(qe.compiled_arc()),
                Arc::clone(qe.plan()),
                Arc::clone(index.machine().plan()),
                Arc::clone(index.slot_registry()),
                Arc::clone(index.generator_weights_arc()),
                Arc::clone(index.signature()),
                index.domain_size(),
                index.is_dynamic(),
            )
        })
        .ok_or(PersistError::Corrupt(
            "no healthy shard to source the shared plan from; use recover_sharded instead",
        ))?;
    let (compiled, eval_plan, enum_plan, enum_slots, gen_weights, sig, domain_size, dynamic) = plan;

    let body = read_artifact(snap_path, SNAP_MAGIC, S::TAG)?;
    let snap = snapshot::read_snapshot::<S>(&body)?;
    if snap.sharding.is_none() {
        return Err(PersistError::Corrupt(
            "snapshot is unsharded; it cannot restore a shard of a sharded engine",
        ));
    }
    let snapshot_lsn = snap.last_lsn;
    let dump = snap
        .shards
        .into_iter()
        .nth(shard)
        .ok_or(PersistError::Corrupt(
            "snapshot has fewer shards than the live engine",
        ))?;

    let mut qe: QueryEngine<S, P> =
        QueryEngine::from_saved(compiled, eval_plan, dump.slot_values, dump.gate_values)?;
    let machine =
        EnumMachine::from_saved(enum_plan, dump.machine).map_err(PersistError::Corrupt)?;
    let mut index = AnswerIndex::from_saved_parts(
        machine,
        enum_slots,
        engine.arity(),
        dynamic,
        gen_weights,
        sig,
        domain_size,
    );

    let scan = wal::scan_wal(wal_path)?;
    let mut replayed = 0usize;
    let mut report = replay_batches(scan, snapshot_lsn, |batch| {
        // The journaled batch is already coalesced and grouped by
        // shard, so this shard's subsequence is exactly the group the
        // live engine applied (or would have applied) — replaying it
        // through the same batched path reproduces the enumeration
        // structures byte for byte (their internal order is
        // update-history-dependent).
        let group: Vec<&TupleUpdate> = batch
            .updates
            .iter()
            .filter(|u| engine.owning_shard(&u.tuple) == Some(shard))
            .collect();
        if group.is_empty() {
            return Ok(());
        }
        index.apply_batch_coalesced(&group)?;
        qe.apply_batch_coalesced(&group);
        replayed += group.len();
        Ok(())
    })?;
    // `replay_batches` counts whole batches; this restore only applied
    // the updates the shard owns.
    report.updates_replayed = replayed;

    index.self_check().map_err(PersistError::Invariant)?;
    engine
        .install_shard(shard, qe, index)
        .map_err(PersistError::Corrupt)?;
    Ok(report)
}

/// Open (or create) the WAL at `path` for appending — truncating any
/// torn tail — and attach it to `engine`. Returns the LSN the log was
/// committed through.
pub fn attach_file_wal<S, P>(
    engine: &mut EnumQueryEngine<S, P>,
    path: impl AsRef<Path>,
) -> Result<u64, PersistError>
where
    S: Semiring,
    P: PermMaint<S>,
{
    let path = path.as_ref();
    let (sink, last) = if path.exists() {
        FileWal::open_append(path)?
    } else {
        (FileWal::create(path)?, 0)
    };
    engine.attach_wal(Box::new(sink));
    Ok(last)
}

/// Sharded counterpart of [`attach_file_wal`].
pub fn attach_sharded_file_wal<S, P>(
    engine: &ShardedEngine<S, P>,
    path: impl AsRef<Path>,
) -> Result<u64, PersistError>
where
    S: Semiring,
    P: PermMaint<S>,
{
    let path = path.as_ref();
    let (sink, last) = if path.exists() {
        FileWal::open_append(path)?
    } else {
        (FileWal::create(path)?, 0)
    };
    engine.attach_wal(Box::new(sink));
    Ok(last)
}
