//! The checksummed update WAL: an append-only log of **committed**
//! update batches, written through the engines' [`WalSink`] hook and
//! replayed at recovery to roll a snapshot forward to the crash point.
//!
//! # Framing
//!
//! The file opens with the 8-byte header `AGQW` + version `u32`. After
//! the header it is a sequence of length-prefixed records:
//!
//! ```text
//! [len: u32][crc: u32][payload: len bytes]
//! ```
//!
//! `crc` is the CRC-32 of the payload alone, so a bit flip anywhere in a
//! record (or its frame — a corrupted `len` desynchronizes the CRC too)
//! is detected at that record. Payloads come in two kinds, by first
//! byte:
//!
//! * tag `1` — one tuple update: `rel u32`, `present u8`, `arity u8`,
//!   then `arity` elements as `u32`s;
//! * tag `2` — a batch **commit marker**: `lsn u64`, `count u32`. The
//!   marker seals the `count` update records immediately before it as
//!   batch `lsn`.
//!
//! A batch is *committed* iff its marker is fully on disk with a valid
//! CRC and its count matches the pending updates. Anything after the
//! last committed marker — a half-written record, updates with no
//! marker, a CRC failure — is the **tail**, and recovery discards it
//! (reported via [`RecoveryReport`]'s `torn_tail`/`corrupt_tail` and
//! `truncated_at`). The engines journal **write-ahead**: a batch is
//! appended (and fsync-flushed per the engine's `DurabilityPolicy`)
//! under the same locks that order the apply, *before* the in-memory
//! apply runs, and the LSN advances only once the append succeeds (or
//! the policy is fail-open). Discarding a torn tail therefore only
//! forgets a batch whose append never completed — one the engine
//! either rejected (fail-stop, nothing applied) or at worst applied
//! without durability in the crash window; replaying the committed
//! prefix plus quarantine-restore covers the rest (see
//! `engine_io::restore_quarantined_shard`).

use crate::codec::{ByteReader, ByteWriter};
use crate::crc32::crc32;
use crate::error::{PersistError, RecoveryReport};
use agq_core::{TupleUpdate, WalSink};
use agq_structure::{RelId, MAX_ARITY};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Magic of a WAL file.
pub const WAL_MAGIC: [u8; 4] = *b"AGQW";
/// Format version this build reads and writes.
pub const WAL_VERSION: u32 = 1;
/// Byte length of the file header (magic + version).
pub const WAL_HEADER_LEN: u64 = 8;

const TAG_UPDATE: u8 = 1;
const TAG_COMMIT: u8 = 2;

fn encode_update(u: &TupleUpdate) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u8(TAG_UPDATE);
    w.u32(u.rel.0);
    w.u8(u.present as u8);
    w.u8(u.tuple.len() as u8);
    for &e in &u.tuple {
        w.u32(e);
    }
    w.into_bytes()
}

fn encode_commit(lsn: u64, count: u32) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u8(TAG_COMMIT);
    w.u64(lsn);
    w.u32(count);
    w.into_bytes()
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(payload.len() as u32);
    w.u32(crc32(payload));
    w.raw(payload);
    w.into_bytes()
}

/// A file-backed [`WalSink`]: buffered appends, one `flush` per batch
/// (issued by the engines right after the commit marker).
pub struct FileWal {
    out: BufWriter<File>,
}

impl FileWal {
    /// Create a fresh WAL at `path`, truncating any existing file and
    /// writing the header.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let mut f = File::create(path)?;
        f.write_all(&WAL_MAGIC)?;
        f.write_all(&WAL_VERSION.to_le_bytes())?;
        Ok(FileWal {
            out: BufWriter::new(f),
        })
    }

    /// Open an existing WAL for appending, first scanning it and
    /// truncating any torn or corrupt tail so new records extend a
    /// clean committed prefix. Returns the sink and the highest
    /// committed LSN found.
    pub fn open_append(path: impl AsRef<Path>) -> Result<(Self, u64), PersistError> {
        let path = path.as_ref();
        let scan = scan_wal(path)?;
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(scan.valid_len)?;
        let mut f = f;
        f.seek(SeekFrom::End(0))?;
        Ok((
            FileWal {
                out: BufWriter::new(f),
            },
            scan.last_lsn,
        ))
    }
}

impl WalSink for FileWal {
    fn append_batch(&mut self, lsn: u64, updates: &[TupleUpdate]) -> std::io::Result<()> {
        for u in updates {
            self.out.write_all(&frame(&encode_update(u)))?;
        }
        self.out
            .write_all(&frame(&encode_commit(lsn, updates.len() as u32)))?;
        Ok(())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()?;
        self.out.get_ref().sync_data()
    }
}

/// One committed batch recovered from a WAL.
pub struct WalBatch {
    /// The batch's sequence number.
    pub lsn: u64,
    /// Its updates, in logged order.
    pub updates: Vec<TupleUpdate>,
}

/// Outcome of scanning a WAL file.
pub struct WalScan {
    /// Every committed batch, in log order (duplicates not yet
    /// filtered — replay handles LSN monotonicity).
    pub batches: Vec<WalBatch>,
    /// Highest committed LSN (0 when the log holds no batches).
    pub last_lsn: u64,
    /// Byte length of the valid committed prefix (header included).
    pub valid_len: u64,
    /// A partial record or uncommitted batch trailed the log.
    pub torn_tail: bool,
    /// A CRC or framing failure trailed the log.
    pub corrupt_tail: bool,
}

fn decode_payload(payload: &[u8]) -> Result<WalRecord, PersistError> {
    let mut r = ByteReader::new(payload);
    let rec = match r.u8()? {
        TAG_UPDATE => {
            let rel = RelId(r.u32()?);
            let present = match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(PersistError::Corrupt("present flag is neither 0 nor 1")),
            };
            let arity = r.u8()? as usize;
            if arity > MAX_ARITY {
                return Err(PersistError::Corrupt("update arity exceeds MAX_ARITY"));
            }
            let mut tuple = Vec::with_capacity(arity);
            for _ in 0..arity {
                tuple.push(r.u32()?);
            }
            WalRecord::Update(TupleUpdate {
                rel,
                tuple,
                present,
            })
        }
        TAG_COMMIT => WalRecord::Commit {
            lsn: r.u64()?,
            count: r.u32()?,
        },
        _ => return Err(PersistError::Corrupt("unknown WAL record tag")),
    };
    if !r.is_exhausted() {
        return Err(PersistError::Corrupt("trailing bytes in WAL record"));
    }
    Ok(rec)
}

enum WalRecord {
    Update(TupleUpdate),
    Commit { lsn: u64, count: u32 },
}

/// Scan a WAL file: verify the header, walk the records, and return the
/// committed batches plus how far the log is structurally valid.
///
/// The scan never fails on a damaged *body* — torn and corrupt tails
/// are expected after a crash and are reported, not raised. Only a
/// wrong magic, an incompatible version, or an I/O error is an `Err`.
pub fn scan_wal(path: impl AsRef<Path>) -> Result<WalScan, PersistError> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    if buf.len() < WAL_HEADER_LEN as usize {
        return Err(PersistError::Corrupt("WAL shorter than its header"));
    }
    let found: [u8; 4] = buf[0..4].try_into().unwrap();
    if found != WAL_MAGIC {
        return Err(PersistError::BadMagic {
            expected: WAL_MAGIC,
            found,
        });
    }
    let version = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    if version != WAL_VERSION {
        return Err(PersistError::VersionMismatch {
            found: version,
            expected: WAL_VERSION,
        });
    }

    let mut scan = WalScan {
        batches: Vec::new(),
        last_lsn: 0,
        valid_len: WAL_HEADER_LEN,
        torn_tail: false,
        corrupt_tail: false,
    };
    let mut pos = WAL_HEADER_LEN as usize;
    // Updates read since the last commit marker; committed only when a
    // marker with a matching count seals them. If the log ends before
    // that marker, `valid_len` (already at the last committed batch) is
    // the truncation point.
    let mut pending: Vec<TupleUpdate> = Vec::new();

    while pos < buf.len() {
        let rest = &buf[pos..];
        if rest.len() < 8 {
            scan.torn_tail = true;
            break;
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        if rest.len() < 8 + len {
            scan.torn_tail = true;
            break;
        }
        let payload = &rest[8..8 + len];
        if crc32(payload) != crc {
            scan.corrupt_tail = true;
            break;
        }
        let rec = match decode_payload(payload) {
            Ok(rec) => rec,
            Err(_) => {
                scan.corrupt_tail = true;
                break;
            }
        };
        pos += 8 + len;
        match rec {
            WalRecord::Update(u) => pending.push(u),
            WalRecord::Commit { lsn, count } => {
                if count as usize != pending.len() {
                    // The marker does not seal what precedes it: the
                    // log is inconsistent from this batch onward
                    // (`valid_len` already sits at the last good batch).
                    scan.corrupt_tail = true;
                    break;
                }
                scan.batches.push(WalBatch {
                    lsn,
                    updates: std::mem::take(&mut pending),
                });
                scan.last_lsn = scan.last_lsn.max(lsn);
                scan.valid_len = pos as u64;
            }
        }
    }
    if !pending.is_empty() && !scan.corrupt_tail {
        // Updates with no commit marker: an append cut short.
        scan.torn_tail = true;
    }
    Ok(scan)
}

/// Fold a scan into the replay-relevant half of a [`RecoveryReport`]
/// (the `snapshot_lsn` and replay counters are filled in by the
/// caller as it applies batches).
pub fn report_from_scan(scan: &WalScan) -> RecoveryReport {
    let truncated = scan.torn_tail || scan.corrupt_tail;
    RecoveryReport {
        wal_last_lsn: scan.last_lsn,
        batches_committed: scan.batches.len(),
        torn_tail: scan.torn_tail,
        corrupt_tail: scan.corrupt_tail,
        truncated_at: truncated.then_some(scan.valid_len),
        ..RecoveryReport::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("agq_wal_unit_{}_{}", std::process::id(), name));
        p
    }

    fn upd(rel: u32, a: u32, b: u32, present: bool) -> TupleUpdate {
        TupleUpdate {
            rel: RelId(rel),
            tuple: vec![a, b],
            present,
        }
    }

    #[test]
    fn append_scan_roundtrip() {
        let path = tmp("roundtrip");
        let mut wal = FileWal::create(&path).unwrap();
        wal.append_batch(1, &[upd(0, 1, 2, true), upd(0, 2, 3, true)])
            .unwrap();
        wal.append_batch(2, &[upd(0, 1, 2, false)]).unwrap();
        WalSink::flush(&mut wal).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.batches.len(), 2);
        assert_eq!(scan.last_lsn, 2);
        assert!(!scan.torn_tail && !scan.corrupt_tail);
        assert_eq!(scan.batches[0].updates.len(), 2);
        assert!(!scan.batches[1].updates[0].present);
        assert_eq!(scan.valid_len, std::fs::metadata(&path).unwrap().len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_detected_and_bounded() {
        let path = tmp("torn");
        let mut wal = FileWal::create(&path).unwrap();
        wal.append_batch(1, &[upd(0, 1, 2, true)]).unwrap();
        WalSink::flush(&mut wal).unwrap();
        let good_len = std::fs::metadata(&path).unwrap().len();
        // A second batch cut off mid-record.
        wal.append_batch(2, &[upd(0, 5, 6, true)]).unwrap();
        WalSink::flush(&mut wal).unwrap();
        let full = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 3).unwrap();
        drop(f);
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.batches.len(), 1);
        assert!(scan.torn_tail);
        assert_eq!(scan.valid_len, good_len);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_detected() {
        let path = tmp("flip");
        let mut wal = FileWal::create(&path).unwrap();
        wal.append_batch(1, &[upd(0, 1, 2, true)]).unwrap();
        WalSink::flush(&mut wal).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = WAL_HEADER_LEN as usize + 10;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.batches.len(), 0);
        assert!(scan.corrupt_tail);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_append_truncates_tail() {
        let path = tmp("reopen");
        let mut wal = FileWal::create(&path).unwrap();
        wal.append_batch(1, &[upd(0, 1, 2, true)]).unwrap();
        WalSink::flush(&mut wal).unwrap();
        drop(wal);
        // Simulate a crash mid-append: garbage after the committed batch.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xAB; 7]).unwrap();
        drop(f);
        let (mut wal, last) = FileWal::open_append(&path).unwrap();
        assert_eq!(last, 1);
        wal.append_batch(2, &[upd(0, 3, 4, true)]).unwrap();
        WalSink::flush(&mut wal).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.batches.len(), 2);
        assert!(!scan.torn_tail && !scan.corrupt_tail);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_and_version_rejected() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOPE\x01\x00\x00\x00").unwrap();
        assert!(matches!(
            scan_wal(&path),
            Err(PersistError::BadMagic { .. })
        ));
        let mut hdr = WAL_MAGIC.to_vec();
        hdr.extend_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &hdr).unwrap();
        assert!(matches!(
            scan_wal(&path),
            Err(PersistError::VersionMismatch {
                found: 99,
                expected: WAL_VERSION
            })
        ));
        std::fs::remove_file(&path).ok();
    }
}
