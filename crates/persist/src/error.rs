//! The unified error type of the persistence layer, plus the
//! [`RecoveryReport`] a successful recovery returns.

use agq_core::PartsError;
use agq_enumerate::UpdateError;
use std::fmt;

/// Everything that can go wrong saving or loading persisted engine
/// state. Every failure mode of a corrupted, truncated, or mismatched
/// artifact maps to a variant here — recovery paths never panic on bad
/// bytes.
#[derive(Debug)]
pub enum PersistError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with the expected magic — not one of our
    /// artifacts (or the wrong kind of artifact).
    BadMagic {
        /// The magic the artifact kind requires.
        expected: [u8; 4],
        /// What the file actually starts with.
        found: [u8; 4],
    },
    /// The artifact was written by an incompatible format version.
    VersionMismatch {
        /// Version stamped in the file.
        found: u32,
        /// Version this build reads.
        expected: u32,
    },
    /// The artifact was written for a different semiring carrier than
    /// the one it is being loaded into.
    CarrierMismatch {
        /// Carrier tag stamped in the file.
        found: u8,
        /// Carrier tag of the requested load.
        expected: u8,
    },
    /// The whole-body checksum trailer does not match the contents.
    ChecksumMismatch,
    /// The byte stream is structurally invalid (truncated mid-field,
    /// out-of-range index, impossible length, …).
    Corrupt(&'static str),
    /// A loaded plan/state pair does not fit together.
    Parts(PartsError),
    /// Replaying the WAL tail was rejected by the engine (a batch that
    /// was valid when logged no longer is — e.g. the artifacts come from
    /// different databases).
    Replay(UpdateError),
    /// A whole-engine snapshot was requested while the listed shards
    /// were quarantined — the dump would silently omit their state.
    /// Restore them first (see `restore_quarantined_shard`).
    ShardsUnavailable(Vec<usize>),
    /// A restored engine or shard failed its deep invariant
    /// verification (`self_check`); the rebuilt state was **not**
    /// installed.
    Invariant(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadMagic { expected, found } => write!(
                f,
                "bad magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            PersistError::VersionMismatch { found, expected } => write!(
                f,
                "format version mismatch: file is v{found}, this build reads v{expected}"
            ),
            PersistError::CarrierMismatch { found, expected } => write!(
                f,
                "semiring carrier mismatch: file tag {found}, requested tag {expected}"
            ),
            PersistError::ChecksumMismatch => write!(f, "body checksum mismatch"),
            PersistError::Corrupt(msg) => write!(f, "corrupt artifact: {msg}"),
            PersistError::Parts(e) => write!(f, "plan/state mismatch: {e}"),
            PersistError::Replay(e) => write!(f, "WAL replay rejected: {e}"),
            PersistError::ShardsUnavailable(shards) => {
                write!(
                    f,
                    "shards quarantined, snapshot would be incomplete: {shards:?}"
                )
            }
            PersistError::Invariant(msg) => write!(f, "invariant violation: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<PartsError> for PersistError {
    fn from(e: PartsError) -> Self {
        PersistError::Parts(e)
    }
}

impl From<UpdateError> for PersistError {
    fn from(e: UpdateError) -> Self {
        PersistError::Replay(e)
    }
}

/// What a recovery actually did: how much of the WAL was committed,
/// replayed, skipped, or discarded. Returned alongside the recovered
/// engine so operators can distinguish a clean restart from one that
/// lost an uncommitted tail.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// LSN the loaded snapshot was current through.
    pub snapshot_lsn: u64,
    /// Highest committed LSN observed in the WAL (0 when no WAL or
    /// empty).
    pub wal_last_lsn: u64,
    /// Committed batches found in the WAL (valid frame + commit marker).
    pub batches_committed: usize,
    /// Batches actually replayed (committed, LSN past the snapshot).
    pub batches_replayed: usize,
    /// Tuple updates replayed in those batches.
    pub updates_replayed: usize,
    /// Committed batches skipped as duplicates (LSN not monotonically
    /// increasing — e.g. a tail block duplicated by a storage layer).
    pub batches_skipped: usize,
    /// An incomplete batch (update records with no commit marker) or a
    /// half-written record was found at the tail and discarded.
    pub torn_tail: bool,
    /// A checksum or framing failure was found mid-log; everything from
    /// that point on was discarded.
    pub corrupt_tail: bool,
    /// When the log had to be cut back, the byte offset it is valid to
    /// (`None` when the whole log was clean).
    pub truncated_at: Option<u64>,
}
