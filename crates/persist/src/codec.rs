//! The little-endian byte codec every persisted artifact is written
//! with: explicit-width integers, length-prefixed buffers, no padding,
//! no platform-dependent layout. Readers are bounds-checked — running
//! off the end of a truncated buffer is a [`PersistError::Corrupt`],
//! never a panic.

use crate::error::PersistError;

/// An append-only little-endian byte sink.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far, borrowed.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a raw byte slice (no length prefix).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64`, little-endian two's complement.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a `u64` (the format is 64-bit everywhere,
    /// regardless of host word size).
    pub fn len_prefix(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.len_prefix(s.len());
        self.raw(s.as_bytes());
    }
}

/// A bounds-checked little-endian reader over a byte slice.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the whole buffer has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Take `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Corrupt("unexpected end of buffer"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.raw(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.raw(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.raw(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, PersistError> {
        Ok(i64::from_le_bytes(self.raw(8)?.try_into().unwrap()))
    }

    /// Read a `u64` length prefix, validated against what the buffer
    /// could possibly hold (`min_elem_bytes` per element) so a corrupt
    /// length cannot trigger a huge allocation.
    pub fn len_prefix(&mut self, min_elem_bytes: usize) -> Result<usize, PersistError> {
        let n = self.u64()?;
        let cap = (self.remaining() / min_elem_bytes.max(1)) as u64;
        if n > cap {
            return Err(PersistError::Corrupt("length prefix exceeds buffer"));
        }
        Ok(n as usize)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, PersistError> {
        let n = self.len_prefix(1)?;
        let bytes = self.raw(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PersistError::Corrupt("string is not valid UTF-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.i64(-42);
        w.str("héllo");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.str().unwrap(), "héllo");
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.u64(123);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        assert!(matches!(r.u64(), Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut w = ByteWriter::new();
        w.u64(u64::MAX); // claims u64::MAX elements
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.len_prefix(4), Err(PersistError::Corrupt(_))));
    }
}
