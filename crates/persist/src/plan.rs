//! Plan serialization: the compiled, immutable half of an engine —
//! point-query [`CompiledQuery`] plus the enumeration circuit and its
//! metadata — written once to a `.agqplan` file so cold start skips
//! Theorem 6 compilation entirely.
//!
//! Only the **canonical flat buffers** are stored: the circuits' gate
//! and child arenas, the slot-key registries, literal tables, and the
//! enumeration-side signature. The derived adjacency structures
//! ([`agq_circuit::EvalPlan`], [`agq_enumerate::EnumPlan`] — parent
//! CSRs, cone memos, dense-run tables, perm-pool layout) are *pure
//! functions of the circuit*, recomputed by one linear counting pass at
//! load time; storing them would buy little and create a second source
//! of truth the update sweeps would have to trust.

use crate::codec::{ByteReader, ByteWriter};
use crate::error::PersistError;
use crate::value::{read_values, write_values, PersistValue};
use agq_circuit::{ChildRange, Circuit, ConstRef, GateDef, GateId};
use agq_core::{CompileReport, CompiledQuery, SlotKey, SlotRegistry};
use agq_logic::Var;
use agq_structure::{RelId, Signature, Tuple, WeightId, MAX_ARITY};
use std::sync::Arc;

/// Everything the `.agqplan` file captures for one bound query: the
/// point-query compile output plus the enumeration side's plan inputs.
pub struct PlanBundle<S> {
    /// The point-query compile output.
    pub compiled: CompiledQuery<S>,
    /// The enumeration circuit (drives [`agq_enumerate::EnumPlan`]).
    pub enum_circuit: Arc<Circuit>,
    /// Slot registry of the enumeration circuit.
    pub enum_slots: SlotRegistry,
    /// Generator weight symbols, one per free-variable position.
    pub gen_weights: Vec<WeightId>,
    /// The original database signature (update validation).
    pub sig: Signature,
    /// Domain size of the indexed structure.
    pub domain_size: usize,
    /// Answer-tuple arity.
    pub arity: usize,
    /// Whether the engine was built with dynamic-update support.
    pub dynamic: bool,
}

/// A loaded plan with its derived evaluation structures rebuilt and
/// shared behind `Arc`s, ready to instantiate any number of engine
/// shards over.
pub struct LoadedPlan<S> {
    /// The point-query compile output.
    pub compiled: Arc<CompiledQuery<S>>,
    /// Derived point-evaluation plan (parent CSR, cones, dense runs).
    pub eval_plan: Arc<agq_circuit::EvalPlan>,
    /// Derived enumeration plan.
    pub enum_plan: Arc<agq_enumerate::EnumPlan>,
    /// Slot registry of the enumeration circuit.
    pub enum_slots: Arc<SlotRegistry>,
    /// Generator weight symbols.
    pub gen_weights: Arc<Vec<WeightId>>,
    /// The original database signature.
    pub sig: Arc<Signature>,
    /// Domain size of the indexed structure.
    pub domain_size: usize,
    /// Answer-tuple arity.
    pub arity: usize,
    /// Whether the engine was built with dynamic-update support.
    pub dynamic: bool,
}

impl<S> LoadedPlan<S> {
    /// Rebuild the derived plans from a parsed bundle. Each rebuild is
    /// one linear counting pass over its circuit — the cheap step that
    /// stands in for the full Theorem 6 compilation at cold start.
    pub fn from_bundle(bundle: PlanBundle<S>) -> Self {
        // Same cone-slot selection as `QueryEngine::build_plan`: update
        // cones are rooted at the free-variable indicator inputs.
        let cone_slots: Vec<u32> = bundle
            .compiled
            .slots
            .iter()
            .filter(|(_, key)| matches!(key, SlotKey::FreeVar(..)))
            .map(|(slot, _)| slot)
            .collect();
        let eval_plan = Arc::new(agq_circuit::EvalPlan::with_cones(
            Arc::clone(&bundle.compiled.circuit),
            &cone_slots,
        ));
        let enum_plan = Arc::new(agq_enumerate::EnumPlan::new(bundle.enum_circuit));
        LoadedPlan {
            compiled: Arc::new(bundle.compiled),
            eval_plan,
            enum_plan,
            enum_slots: Arc::new(bundle.enum_slots),
            gen_weights: Arc::new(bundle.gen_weights),
            sig: Arc::new(bundle.sig),
            domain_size: bundle.domain_size,
            arity: bundle.arity,
            dynamic: bundle.dynamic,
        }
    }
}

// ---------------------------------------------------------------------
// circuits
// ---------------------------------------------------------------------

fn write_circuit(w: &mut ByteWriter, c: &Circuit) {
    w.u32(c.num_slots() as u32);
    w.u32(c.num_lits() as u32);
    w.u32(c.output().0);
    w.len_prefix(c.child_arena().len());
    for g in c.child_arena() {
        w.u32(g.0);
    }
    w.len_prefix(c.gates().len());
    for g in c.gates() {
        match *g {
            GateDef::Input(slot) => {
                w.u8(0);
                w.u32(slot);
            }
            GateDef::Const(ConstRef::Zero) => w.u8(1),
            GateDef::Const(ConstRef::One) => w.u8(2),
            GateDef::Const(ConstRef::Lit(i)) => {
                w.u8(3);
                w.u32(i);
            }
            GateDef::Add(r) => {
                w.u8(4);
                w.u32(r.start());
                w.u32(r.len() as u32);
            }
            GateDef::Mul(a, b) => {
                w.u8(5);
                w.u32(a.0);
                w.u32(b.0);
            }
            GateDef::Perm { rows, cols } => {
                w.u8(6);
                w.u8(rows);
                w.u32(cols.start());
                w.u32(cols.len() as u32);
            }
        }
    }
}

fn read_circuit(r: &mut ByteReader) -> Result<Circuit, PersistError> {
    let num_slots = r.u32()?;
    let num_lits = r.u32()?;
    let output = GateId(r.u32()?);
    let n_children = r.len_prefix(4)?;
    let mut children = Vec::with_capacity(n_children);
    for _ in 0..n_children {
        children.push(GateId(r.u32()?));
    }
    let n_gates = r.len_prefix(1)?;
    let mut gates = Vec::with_capacity(n_gates);
    for _ in 0..n_gates {
        gates.push(match r.u8()? {
            0 => GateDef::Input(r.u32()?),
            1 => GateDef::Const(ConstRef::Zero),
            2 => GateDef::Const(ConstRef::One),
            3 => GateDef::Const(ConstRef::Lit(r.u32()?)),
            4 => GateDef::Add(ChildRange::new(r.u32()?, r.u32()?)),
            5 => GateDef::Mul(GateId(r.u32()?), GateId(r.u32()?)),
            6 => {
                let rows = r.u8()?;
                GateDef::Perm {
                    rows,
                    cols: ChildRange::new(r.u32()?, r.u32()?),
                }
            }
            _ => return Err(PersistError::Corrupt("unknown gate tag")),
        });
    }
    Circuit::from_raw_parts(gates, children, num_slots, num_lits, output)
        .map_err(PersistError::Corrupt)
}

// ---------------------------------------------------------------------
// slot registries
// ---------------------------------------------------------------------

fn write_tuple(w: &mut ByteWriter, t: &Tuple) {
    let items = t.as_slice();
    w.u8(items.len() as u8);
    for &e in items {
        w.u32(e);
    }
}

fn read_tuple(r: &mut ByteReader) -> Result<Tuple, PersistError> {
    let len = r.u8()? as usize;
    if len > MAX_ARITY {
        return Err(PersistError::Corrupt("tuple arity exceeds MAX_ARITY"));
    }
    let mut items = [0u32; MAX_ARITY];
    for item in items.iter_mut().take(len) {
        *item = r.u32()?;
    }
    Ok(Tuple::new(&items[..len]))
}

fn write_slots(w: &mut ByteWriter, slots: &SlotRegistry) {
    w.len_prefix(slots.len());
    for (_, key) in slots.iter() {
        match key {
            SlotKey::Weight(wid, t) => {
                w.u8(0);
                w.u32(wid.0);
                write_tuple(w, &t);
            }
            SlotKey::FreeVar(pos, e) => {
                w.u8(1);
                w.u8(pos);
                w.u32(e);
            }
            SlotKey::AtomPos(rid, t) => {
                w.u8(2);
                w.u32(rid.0);
                write_tuple(w, &t);
            }
            SlotKey::AtomNeg(rid, t) => {
                w.u8(3);
                w.u32(rid.0);
                write_tuple(w, &t);
            }
        }
    }
}

fn read_slots(r: &mut ByteReader) -> Result<SlotRegistry, PersistError> {
    let n = r.len_prefix(2)?;
    let mut slots = SlotRegistry::new();
    for i in 0..n {
        let key = match r.u8()? {
            0 => SlotKey::Weight(WeightId(r.u32()?), read_tuple(r)?),
            1 => SlotKey::FreeVar(r.u8()?, r.u32()?),
            2 => SlotKey::AtomPos(RelId(r.u32()?), read_tuple(r)?),
            3 => SlotKey::AtomNeg(RelId(r.u32()?), read_tuple(r)?),
            _ => return Err(PersistError::Corrupt("unknown slot-key tag")),
        };
        // Re-interning in slot order reproduces the registry exactly; a
        // duplicate key means the file was not written by us.
        if slots.intern(key) != i as u32 {
            return Err(PersistError::Corrupt("duplicate slot key"));
        }
    }
    Ok(slots)
}

// ---------------------------------------------------------------------
// signature + report
// ---------------------------------------------------------------------

fn write_signature(w: &mut ByteWriter, sig: &Signature) {
    w.len_prefix(sig.num_relations());
    for r in sig.relation_ids() {
        w.str(sig.relation_name(r));
        w.u8(sig.relation_arity(r) as u8);
    }
    w.len_prefix(sig.num_weights());
    for wid in sig.weight_ids() {
        w.str(sig.weight_name(wid));
        w.u8(sig.weight_arity(wid) as u8);
    }
}

fn read_signature(r: &mut ByteReader) -> Result<Signature, PersistError> {
    let mut sig = Signature::new();
    let n_rel = r.len_prefix(2)?;
    for _ in 0..n_rel {
        let name = r.str()?;
        let arity = r.u8()? as usize;
        sig.add_relation(&name, arity);
    }
    let n_w = r.len_prefix(2)?;
    for _ in 0..n_w {
        let name = r.str()?;
        let arity = r.u8()? as usize;
        sig.add_weight(&name, arity);
    }
    Ok(sig)
}

fn write_report(w: &mut ByteWriter, rep: &CompileReport) {
    w.u32(rep.num_colors);
    w.u64(rep.num_subsets as u64);
    w.u64(rep.shapes_instantiated as u64);
    w.u32(rep.max_forest_depth);
    let s = &rep.stats;
    for v in [
        s.num_gates,
        s.num_edges,
        s.depth,
        s.max_fanout,
        s.max_add_fanin,
        s.max_perm_rows,
        s.max_perm_cols,
    ] {
        w.u64(v as u64);
    }
}

fn read_report(r: &mut ByteReader) -> Result<CompileReport, PersistError> {
    let num_colors = r.u32()?;
    let num_subsets = r.u64()? as usize;
    let shapes_instantiated = r.u64()? as usize;
    let max_forest_depth = r.u32()?;
    let mut vals = [0usize; 7];
    for v in vals.iter_mut() {
        *v = r.u64()? as usize;
    }
    Ok(CompileReport {
        num_colors,
        num_subsets,
        shapes_instantiated,
        max_forest_depth,
        stats: agq_circuit::CircuitStats {
            num_gates: vals[0],
            num_edges: vals[1],
            depth: vals[2],
            max_fanout: vals[3],
            max_add_fanin: vals[4],
            max_perm_rows: vals[5],
            max_perm_cols: vals[6],
        },
    })
}

// ---------------------------------------------------------------------
// the bundle
// ---------------------------------------------------------------------

/// What `write_bundle` needs from a live engine, borrowed — saving
/// never clones the (large) compiled artifacts.
pub struct PlanRefs<'a, S> {
    /// The point-query compile output.
    pub compiled: &'a CompiledQuery<S>,
    /// The enumeration circuit.
    pub enum_circuit: &'a Circuit,
    /// Slot registry of the enumeration circuit.
    pub enum_slots: &'a SlotRegistry,
    /// Generator weight symbols, one per free-variable position.
    pub gen_weights: &'a [WeightId],
    /// The original database signature.
    pub sig: &'a Signature,
    /// Domain size of the indexed structure.
    pub domain_size: usize,
    /// Answer-tuple arity.
    pub arity: usize,
    /// Whether the engine was built with dynamic-update support.
    pub dynamic: bool,
}

/// Serialize a plan bundle into the body bytes of a `.agqplan` file
/// (header and checksum trailer are added by the file layer in
/// `engine_io`).
pub fn write_bundle<S: PersistValue>(refs: &PlanRefs<'_, S>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u8(refs.dynamic as u8);
    w.u64(refs.arity as u64);
    w.u64(refs.domain_size as u64);
    // point side
    write_circuit(&mut w, &refs.compiled.circuit);
    write_slots(&mut w, &refs.compiled.slots);
    write_values(&mut w, &refs.compiled.lits);
    w.len_prefix(refs.compiled.free_vars.len());
    for v in &refs.compiled.free_vars {
        w.u32(v.0);
    }
    write_report(&mut w, &refs.compiled.report);
    // enumeration side
    write_circuit(&mut w, refs.enum_circuit);
    write_slots(&mut w, refs.enum_slots);
    w.len_prefix(refs.gen_weights.len());
    for g in refs.gen_weights {
        w.u32(g.0);
    }
    write_signature(&mut w, refs.sig);
    w.into_bytes()
}

/// Parse a plan bundle back out of `.agqplan` body bytes. Structural
/// invariants (circuit topology, slot/registry consistency) are
/// re-validated; a corrupt body is an `Err`, never a panic.
pub fn read_bundle<S: PersistValue>(body: &[u8]) -> Result<PlanBundle<S>, PersistError> {
    let mut r = ByteReader::new(body);
    let dynamic = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(PersistError::Corrupt("dynamic flag is neither 0 nor 1")),
    };
    let arity = r.u64()? as usize;
    let domain_size = r.u64()? as usize;
    // point side
    let circuit = read_circuit(&mut r)?;
    let slots = read_slots(&mut r)?;
    if slots.len() != circuit.num_slots() {
        return Err(PersistError::Corrupt(
            "slot registry disagrees with circuit",
        ));
    }
    let lits: Vec<S> = read_values(&mut r)?;
    if lits.len() != circuit.num_lits() {
        return Err(PersistError::Corrupt(
            "literal table disagrees with circuit",
        ));
    }
    let n_free = r.len_prefix(4)?;
    let mut free_vars = Vec::with_capacity(n_free);
    for _ in 0..n_free {
        free_vars.push(Var(r.u32()?));
    }
    let report = read_report(&mut r)?;
    let compiled = CompiledQuery {
        circuit: Arc::new(circuit),
        slots,
        lits,
        free_vars,
        report,
    };
    // enumeration side
    let enum_circuit = read_circuit(&mut r)?;
    if enum_circuit.num_lits() != 0 {
        return Err(PersistError::Corrupt("enumeration circuit has literals"));
    }
    let enum_slots = read_slots(&mut r)?;
    if enum_slots.len() != enum_circuit.num_slots() {
        return Err(PersistError::Corrupt(
            "enumeration slot registry disagrees with circuit",
        ));
    }
    let n_gen = r.len_prefix(4)?;
    let mut gen_weights = Vec::with_capacity(n_gen);
    for _ in 0..n_gen {
        gen_weights.push(WeightId(r.u32()?));
    }
    if gen_weights.len() != arity {
        return Err(PersistError::Corrupt(
            "generator count disagrees with arity",
        ));
    }
    let sig = read_signature(&mut r)?;
    if !r.is_exhausted() {
        return Err(PersistError::Corrupt("trailing bytes after plan bundle"));
    }
    Ok(PlanBundle {
        compiled,
        enum_circuit: Arc::new(enum_circuit),
        enum_slots,
        gen_weights,
        sig,
        domain_size,
        arity,
        dynamic,
    })
}
