//! # `agq-persist` — plan/state serialization, snapshots, and a WAL
//!
//! Crash-safe persistence for the aggregate-query engines: the compiled
//! plan and the mutable evaluator state are written to disk, updates
//! are journaled through a checksummed write-ahead log, and a restart
//! reassembles an engine that answers **byte-identically** to the one
//! that went down — without re-running the Theorem 6 compilation.
//!
//! Three artifact kinds:
//!
//! * **`.agqplan`** — the immutable half: the point-query circuit with
//!   its slot registry, literal table, free variables, and compile
//!   report, plus the enumeration circuit, its registry, the generator
//!   weights, the database signature, the domain size, arity, and
//!   dynamic flag. Written once per compiled query; loading one skips
//!   compilation entirely (the derived [`agq_circuit::EvalPlan`] /
//!   [`agq_enumerate::EnumPlan`] adjacency structures are rebuilt by
//!   one linear pass each, since they are pure functions of the
//!   circuit).
//! * **`.agqsnap`** — the mutable half: per shard, the evaluator's slot
//!   values and committed gate values and the enumeration machine's
//!   provenance supports, captured at one LSN. Sharded snapshots are
//!   taken under the engine's ordered whole-lockset read guard, so they
//!   are point-in-time consistent across shards, and additionally carry
//!   the Gaifman component → shard routing tables.
//! * **`wal.agqlog`** — the write-ahead log: committed update batches,
//!   one CRC per record, replayed at recovery to roll a snapshot
//!   forward to the crash point.
//!
//! # File format
//!
//! All integers are **little-endian**, fixed width; lengths are `u64`;
//! there is no alignment padding. Plan and snapshot files share one
//! framing:
//!
//! ```text
//! offset  size  field
//! 0       4     magic           — "AGQP" (plan) / "AGQS" (snapshot)
//! 4       4     version u32     — FORMAT_VERSION (currently 1)
//! 8       1     carrier tag u8  — PersistValue::TAG of the semiring
//! 9       n     body            — bundle payload (plan.rs / snapshot.rs)
//! 9+n     4     crc u32         — CRC-32 (IEEE) of the body bytes
//! ```
//!
//! A wrong magic, an unknown version, a foreign carrier tag, and a
//! trailer mismatch each map to their own [`PersistError`] variant; a
//! structurally invalid body is [`PersistError::Corrupt`]. Loading
//! never panics on bad bytes — every length is validated against the
//! buffer before allocation, every index against its range.
//!
//! The WAL has its own header (`"AGQW"` + version `u32`) and is a
//! record stream, not a checksummed monolith, so an arbitrarily damaged
//! *tail* still yields the full committed prefix — see [`wal`] for the
//! record framing and tail-repair rules.
//!
//! # Versioning
//!
//! The version word covers the **whole body layout**: any change to
//! field order, widths, or semantics bumps it, and loaders reject files
//! from other versions outright ([`PersistError::VersionMismatch`])
//! rather than guessing. Carriers version independently through their
//! tag byte. Values round-trip bit-exactly (`f64` through
//! `to_bits`/`from_bits`), which is what makes the differential
//! round-trip suite's byte-identity assertions meaningful.
//!
//! # LSN semantics
//!
//! Every successfully journaled update batch bumps the owning engine's
//! **log sequence number**, whether or not a WAL sink is attached, so
//! snapshots are always sequenced. A snapshot records the LSN it is
//! current through; a WAL commit marker records the LSN of its batch.
//! The engines journal **write-ahead**: the batch is appended under
//! the same locks that order the apply, *before* the in-memory apply,
//! and the LSN advances only if the append succeeds (or the engine's
//! `DurabilityPolicy` is fail-open, which flags `wal_degraded`
//! instead). A failed fail-stop append rejects the batch with nothing
//! applied and the LSN unmoved — no gap, no divergence. The log may
//! therefore briefly contain a batch the engine had not finished
//! applying (a crash in that window is healed by replay, which is
//! idempotent from the snapshot LSN); it never *misses* a batch the
//! engine applied. Recovery replays exactly the committed batches with
//! `snapshot LSN < batch LSN`, skips non-monotonic duplicates,
//! discards torn or corrupt tails, and reports all of it in a
//! [`RecoveryReport`]. The same machinery restores a single
//! quarantined shard in place ([`restore_quarantined_shard`]): its
//! snapshot partition is reloaded and the WAL's shard-owned
//! subsequences are replayed through the batched apply path, so the
//! restored shard is byte-identical to one that never faulted.

pub mod codec;
pub mod crc32;
pub mod engine_io;
pub mod error;
pub mod plan;
pub mod snapshot;
pub mod value;
pub mod wal;

pub use engine_io::{
    attach_file_wal, attach_sharded_file_wal, load_engine, load_plan, load_sharded, recover_engine,
    recover_sharded, restore_quarantined_shard, save_engine, save_plan, save_sharded,
    save_sharded_plan, save_sharded_snapshot, save_snapshot, SaveStats, FORMAT_VERSION, PLAN_MAGIC,
    SNAP_MAGIC,
};
pub use error::{PersistError, RecoveryReport};
pub use plan::LoadedPlan;
pub use value::PersistValue;
pub use wal::{scan_wal, FileWal, WalBatch, WalScan, WAL_MAGIC, WAL_VERSION};
