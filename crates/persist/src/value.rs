//! Per-carrier value codecs: how each semiring carrier's values are laid
//! out in persisted artifacts. Every carrier gets a distinct tag byte,
//! stamped in the artifact headers, so loading a file into the wrong
//! carrier is a [`PersistError::CarrierMismatch`] instead of garbage.
//!
//! Round trips are **bit-exact**: `F64` goes through
//! `to_bits`/`from_bits` (NaN payloads, signed zeros, everything), the
//! integer carriers are plain two's-complement words, `Mod` carries its
//! modulus alongside the residue. This is what lets the differential
//! suite assert byte-identical answers between a live engine and its
//! recovered twin.

use crate::codec::{ByteReader, ByteWriter};
use crate::error::PersistError;
use agq_semiring::{Bool, Int, Mod, Nat, F64};

/// A semiring carrier that can be persisted. Implemented for the value
/// types the engines are instantiated with; the tag guards against
/// cross-carrier loads.
pub trait PersistValue: Sized {
    /// Distinct per-carrier tag stamped in artifact headers.
    const TAG: u8;

    /// Append this value's canonical little-endian encoding.
    fn write_value(&self, w: &mut ByteWriter);

    /// Read one value back (bounds-checked).
    fn read_value(r: &mut ByteReader) -> Result<Self, PersistError>;
}

impl PersistValue for Nat {
    const TAG: u8 = 1;

    fn write_value(&self, w: &mut ByteWriter) {
        w.u64(self.0);
    }

    fn read_value(r: &mut ByteReader) -> Result<Self, PersistError> {
        Ok(Nat(r.u64()?))
    }
}

impl PersistValue for Int {
    const TAG: u8 = 2;

    fn write_value(&self, w: &mut ByteWriter) {
        w.i64(self.0);
    }

    fn read_value(r: &mut ByteReader) -> Result<Self, PersistError> {
        Ok(Int(r.i64()?))
    }
}

impl PersistValue for Bool {
    const TAG: u8 = 3;

    fn write_value(&self, w: &mut ByteWriter) {
        w.u8(self.0 as u8);
    }

    fn read_value(r: &mut ByteReader) -> Result<Self, PersistError> {
        match r.u8()? {
            0 => Ok(Bool(false)),
            1 => Ok(Bool(true)),
            _ => Err(PersistError::Corrupt("Bool byte is neither 0 nor 1")),
        }
    }
}

impl PersistValue for F64 {
    const TAG: u8 = 4;

    fn write_value(&self, w: &mut ByteWriter) {
        w.u64(self.0.to_bits());
    }

    fn read_value(r: &mut ByteReader) -> Result<Self, PersistError> {
        Ok(F64(f64::from_bits(r.u64()?)))
    }
}

impl PersistValue for Mod {
    const TAG: u8 = 5;

    fn write_value(&self, w: &mut ByteWriter) {
        w.u64(self.value());
        w.u64(self.modulus());
    }

    fn read_value(r: &mut ByteReader) -> Result<Self, PersistError> {
        let value = r.u64()?;
        let modulus = r.u64()?;
        if modulus == 0 {
            return Err(PersistError::Corrupt("Mod with zero modulus"));
        }
        Ok(Mod::new(value, modulus))
    }
}

/// Write a whole value slice, length-prefixed.
pub fn write_values<S: PersistValue>(w: &mut ByteWriter, values: &[S]) {
    w.len_prefix(values.len());
    for v in values {
        v.write_value(w);
    }
}

/// Read a length-prefixed value vector back.
pub fn read_values<S: PersistValue>(r: &mut ByteReader) -> Result<Vec<S>, PersistError> {
    let n = r.len_prefix(1)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(S::read_value(r)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip_is_bit_exact() {
        for v in [0.0, -0.0, 1.5, f64::NAN, f64::INFINITY, f64::MIN_POSITIVE] {
            let mut w = ByteWriter::new();
            F64(v).write_value(&mut w);
            let bytes = w.into_bytes();
            let got = F64::read_value(&mut ByteReader::new(&bytes)).unwrap();
            assert_eq!(got.0.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn carrier_tags_are_distinct() {
        let tags = [Nat::TAG, Int::TAG, Bool::TAG, F64::TAG, Mod::TAG];
        let mut dedup = tags.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), tags.len());
    }
}
