//! State snapshots: the **mutable** half of an engine — committed gate
//! values, slot inputs, and the enumeration machine's provenance
//! supports — captured per shard at a point-in-time LSN.
//!
//! A snapshot is only meaningful against the plan it was taken under
//! (same circuits, same slot registries); the file layer stamps both
//! artifacts with the carrier tag, and the load path re-validates every
//! length against the plan before reconstructing evaluators.
//!
//! For a [`ShardedEngine`](agq_enumerate::ShardedEngine) the dump also
//! carries the Gaifman component decomposition (element → component →
//! shard tables), so the restored engine routes identically — a
//! snapshot taken on one box restores onto another with the same shard
//! assignment.

use crate::codec::{ByteReader, ByteWriter};
use crate::error::PersistError;
use crate::value::{read_values, write_values, PersistValue};
use agq_enumerate::{InputVal, MachineStateDump, ShardStateDump};
use agq_semiring::Gen;
use agq_structure::gaifman::GaifmanComponents;

/// Snapshot body: single-engine (`kind` 0) or sharded (`kind` 1).
pub struct SnapshotBundle<S> {
    /// LSN the states are current through.
    pub last_lsn: u64,
    /// Sharding metadata — `None` for a single-engine snapshot.
    pub sharding: Option<ShardingMeta>,
    /// One state dump per shard (exactly one when unsharded).
    pub shards: Vec<ShardStateDump<S>>,
}

/// The routing tables of a sharded engine.
pub struct ShardingMeta {
    /// The component decomposition (element → component → shard).
    pub components: GaifmanComponents,
    /// Whether φ passed the component-locality check.
    pub component_local: bool,
}

fn write_input_val(w: &mut ByteWriter, iv: &InputVal) {
    w.len_prefix(iv.len());
    for gens in iv {
        w.len_prefix(gens.len());
        for g in gens {
            w.u64(g.0);
        }
    }
}

fn read_input_val(r: &mut ByteReader) -> Result<InputVal, PersistError> {
    let n = r.len_prefix(8)?;
    let mut iv = Vec::with_capacity(n);
    for _ in 0..n {
        let m = r.len_prefix(8)?;
        let mut gens = Vec::with_capacity(m);
        for _ in 0..m {
            gens.push(Gen(r.u64()?));
        }
        iv.push(gens);
    }
    Ok(iv)
}

fn write_u32s(w: &mut ByteWriter, vs: &[u32]) {
    w.len_prefix(vs.len());
    for &v in vs {
        w.u32(v);
    }
}

fn read_u32s(r: &mut ByteReader) -> Result<Vec<u32>, PersistError> {
    let n = r.len_prefix(4)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u32()?);
    }
    Ok(out)
}

fn write_machine(w: &mut ByteWriter, m: &MachineStateDump) {
    w.len_prefix(m.input_vals.len());
    for iv in &m.input_vals {
        write_input_val(w, iv);
    }
    w.len_prefix(m.support.len());
    for &b in &m.support {
        w.u8(b as u8);
    }
    write_u32s(w, &m.add_len);
    write_u32s(w, &m.add_nz);
    write_u32s(w, &m.add_where);
    write_u32s(w, &m.perm_mask);
    write_u32s(w, &m.perm_next);
    write_u32s(w, &m.perm_prev);
    write_u32s(w, &m.perm_heads);
    write_u32s(w, &m.perm_tails);
    w.len_prefix(m.perm_counts.len());
    for &c in &m.perm_counts {
        w.i64(c);
    }
}

fn read_machine(r: &mut ByteReader) -> Result<MachineStateDump, PersistError> {
    let n = r.len_prefix(8)?;
    let mut input_vals = Vec::with_capacity(n);
    for _ in 0..n {
        input_vals.push(read_input_val(r)?);
    }
    let n_sup = r.len_prefix(1)?;
    let mut support = Vec::with_capacity(n_sup);
    for _ in 0..n_sup {
        support.push(match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(PersistError::Corrupt("support byte is neither 0 nor 1")),
        });
    }
    let add_len = read_u32s(r)?;
    let add_nz = read_u32s(r)?;
    let add_where = read_u32s(r)?;
    let perm_mask = read_u32s(r)?;
    let perm_next = read_u32s(r)?;
    let perm_prev = read_u32s(r)?;
    let perm_heads = read_u32s(r)?;
    let perm_tails = read_u32s(r)?;
    let n_counts = r.len_prefix(8)?;
    let mut perm_counts = Vec::with_capacity(n_counts);
    for _ in 0..n_counts {
        perm_counts.push(r.i64()?);
    }
    Ok(MachineStateDump {
        input_vals,
        support,
        add_len,
        add_nz,
        add_where,
        perm_mask,
        perm_next,
        perm_prev,
        perm_heads,
        perm_tails,
        perm_counts,
    })
}

fn write_shard<S: PersistValue>(w: &mut ByteWriter, dump: &ShardStateDump<S>) {
    write_values(w, &dump.slot_values);
    write_values(w, &dump.gate_values);
    write_machine(w, &dump.machine);
}

fn read_shard<S: PersistValue>(r: &mut ByteReader) -> Result<ShardStateDump<S>, PersistError> {
    let slot_values = read_values(r)?;
    let gate_values = read_values(r)?;
    let machine = read_machine(r)?;
    Ok(ShardStateDump {
        slot_values,
        gate_values,
        machine,
    })
}

/// Serialize a snapshot bundle into `.agqsnap` body bytes (header and
/// checksum trailer are added by the file layer in `engine_io`).
pub fn write_snapshot<S: PersistValue>(bundle: &SnapshotBundle<S>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(bundle.last_lsn);
    match &bundle.sharding {
        None => w.u8(0),
        Some(meta) => {
            w.u8(1);
            w.u8(meta.component_local as u8);
            let (comp, comp_shard) = meta.components.parts();
            w.u64(meta.components.num_shards() as u64);
            w.len_prefix(comp.len());
            for &c in comp {
                w.u32(c);
            }
            w.len_prefix(comp_shard.len());
            for &s in comp_shard {
                w.u32(s);
            }
        }
    }
    w.len_prefix(bundle.shards.len());
    for dump in &bundle.shards {
        write_shard(&mut w, dump);
    }
    w.into_bytes()
}

/// Parse a snapshot bundle back out of `.agqsnap` body bytes.
pub fn read_snapshot<S: PersistValue>(body: &[u8]) -> Result<SnapshotBundle<S>, PersistError> {
    let mut r = ByteReader::new(body);
    let last_lsn = r.u64()?;
    let sharding = match r.u8()? {
        0 => None,
        1 => {
            let component_local = match r.u8()? {
                0 => false,
                1 => true,
                _ => {
                    return Err(PersistError::Corrupt(
                        "component-local flag is neither 0 nor 1",
                    ))
                }
            };
            let num_shards = r.u64()? as usize;
            let n_comp = r.len_prefix(4)?;
            let mut comp = Vec::with_capacity(n_comp);
            for _ in 0..n_comp {
                comp.push(r.u32()?);
            }
            let n_cs = r.len_prefix(4)?;
            let mut comp_shard = Vec::with_capacity(n_cs);
            for _ in 0..n_cs {
                comp_shard.push(r.u32()?);
            }
            let components = GaifmanComponents::from_parts(comp, comp_shard, num_shards)
                .map_err(PersistError::Corrupt)?;
            Some(ShardingMeta {
                components,
                component_local,
            })
        }
        _ => return Err(PersistError::Corrupt("unknown snapshot kind")),
    };
    let n_shards = r.len_prefix(8)?;
    if let Some(meta) = &sharding {
        if n_shards != meta.components.num_shards() {
            return Err(PersistError::Corrupt(
                "shard count disagrees with the component decomposition",
            ));
        }
    } else if n_shards != 1 {
        return Err(PersistError::Corrupt(
            "single-engine snapshot must hold exactly one state",
        ));
    }
    let mut shards = Vec::with_capacity(n_shards);
    for _ in 0..n_shards {
        shards.push(read_shard(&mut r)?);
    }
    if !r.is_exhausted() {
        return Err(PersistError::Corrupt("trailing bytes after snapshot"));
    }
    Ok(SnapshotBundle {
        last_lsn,
        sharding,
        shards,
    })
}
