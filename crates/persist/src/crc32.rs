//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`, reflected), the checksum
//! of every persisted artifact: WAL record payloads are checksummed
//! individually (so a torn or bit-flipped tail is detected record by
//! record), plan and snapshot files carry one whole-body trailer.
//!
//! Hand-rolled table-driven implementation — the offline build has no
//! `crc32fast`; one 256-entry table, byte-at-a-time, is plenty for the
//! I/O-bound paths it guards.

/// The 256-entry lookup table for the reflected IEEE polynomial,
/// computed once on first use.
fn table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    })
}

/// CRC-32 of `data` (initial value `!0`, final xor `!0` — the standard
/// zlib/IEEE convention, so test vectors from any CRC-32 tool match).
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = !0u32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // standard check value for "123456789"
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
