//! Criterion benches for experiments E5–E9: compilation, dynamic
//! evaluation, and enumeration through the full pipeline.

use agq_bench::{fill_weights, sparse_random};
use agq_core::{compile, CompileOptions, GeneralEngine};
use agq_enumerate::AnswerIndex;
use agq_logic::{normalize, Expr, Formula, Var};
use agq_semiring::MinPlus;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// E5: Theorem 6 compilation scaling (triangle-cost query).
fn compile_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("E5_compile");
    group.sample_size(10);
    for &n in &[500usize, 1000, 2000] {
        let wl = sparse_random(n, 5);
        let (x, y, z) = (Var(0), Var(1), Var(2));
        let phi = Formula::Rel(wl.e, vec![x, y])
            .and(Formula::Rel(wl.e, vec![y, z]))
            .and(Formula::Rel(wl.e, vec![z, x]));
        let expr: Expr<MinPlus> = Expr::Mul(vec![
            Expr::Bracket(phi),
            Expr::Weight(wl.c, vec![x, y]),
            Expr::Weight(wl.c, vec![y, z]),
            Expr::Weight(wl.c, vec![z, x]),
        ])
        .sum_over([x, y, z]);
        let nf = normalize(&expr).unwrap();
        group.bench_with_input(BenchmarkId::new("triangle_minplus", n), &n, |b, _| {
            b.iter(|| compile(&wl.a, &nf, &CompileOptions::default()).unwrap())
        });
    }
    group.finish();
}

/// E6: Theorem 8 query/update latency.
fn eval_query_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("E6_eval");
    group.sample_size(20);
    for &n in &[2000usize, 16000] {
        let wl = sparse_random(n, 9);
        let (x, y) = (Var(0), Var(1));
        let expr: Expr<MinPlus> = Expr::Mul(vec![
            Expr::Bracket(Formula::Rel(wl.e, vec![x, y])),
            Expr::Weight(wl.c, vec![x, y]),
            Expr::Weight(wl.w, vec![y]),
        ])
        .sum_over([y]);
        let weights = fill_weights(
            &wl,
            3,
            |r| MinPlus(r.gen_range(1..50)),
            |r| MinPlus(r.gen_range(1..50)),
        );
        let nf = normalize(&expr).unwrap();
        let compiled = compile(&wl.a, &nf, &CompileOptions::default()).unwrap();
        let mut engine: GeneralEngine<MinPlus> = GeneralEngine::new(compiled, &weights);
        let mut rng = SmallRng::seed_from_u64(1);
        group.bench_function(BenchmarkId::new("query", n), |b| {
            b.iter(|| engine.query(&[rng.gen_range(0..n as u32)]))
        });
        group.bench_function(BenchmarkId::new("update", n), |b| {
            b.iter(|| {
                engine.set_weight(
                    wl.w,
                    &[rng.gen_range(0..n as u32)],
                    MinPlus(rng.gen_range(1..50)),
                )
            })
        });
    }
    group.finish();
}

/// E9: Theorem 24 enumeration delay (one answer step, index prebuilt).
fn enum_delay(c: &mut Criterion) {
    let mut group = c.benchmark_group("E9_enum_delay");
    group.sample_size(20);
    for &n in &[1000usize, 4000] {
        let wl = sparse_random(n, 7);
        let (x, y, z) = (Var(0), Var(1), Var(2));
        let phi = Formula::Rel(wl.e, vec![x, y])
            .and(Formula::Rel(wl.e, vec![y, z]))
            .and(Formula::neq(x, z));
        let ix = AnswerIndex::build(&wl.a, &phi, &CompileOptions::default()).unwrap();
        group.bench_function(BenchmarkId::new("next", n), |b| {
            let mut it = ix.iter();
            b.iter(|| match it.next() {
                Some(t) => t,
                None => {
                    it = ix.iter();
                    it.next().unwrap()
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, compile_scaling, eval_query_update, enum_delay);
criterion_main!(benches);
