//! Criterion benches for experiments E1–E4: permanent evaluation and
//! maintenance across semiring capabilities.

use agq_perm::{perm_naive, perm_streaming, ColMatrix, FinitePerm, RingPerm, SegTreePerm};
use agq_semiring::{Bool, Int, Nat};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_matrix(k: usize, n: usize, seed: u64) -> ColMatrix<Nat> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut m = ColMatrix::new(k);
    for _ in 0..n {
        let col: Vec<Nat> = (0..k).map(|_| Nat(rng.gen_range(0..100))).collect();
        m.push_col(&col);
    }
    m
}

/// E1: streaming evaluation is linear in n; naive is n^k.
fn perm_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1_perm_eval");
    group.sample_size(10);
    for &n in &[256usize, 1024, 4096] {
        let m = random_matrix(3, n, n as u64);
        group.bench_with_input(BenchmarkId::new("streaming_k3", n), &m, |b, m| {
            b.iter(|| perm_streaming(m))
        });
    }
    for &n in &[16usize, 32, 64] {
        let m = random_matrix(3, n, n as u64);
        group.bench_with_input(BenchmarkId::new("naive_k3", n), &m, |b, m| {
            b.iter(|| perm_naive(m))
        });
    }
    group.finish();
}

/// E2–E4: update latency by maintenance structure.
fn perm_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("E2_E4_perm_update");
    group.sample_size(20);
    for &n in &[1024usize, 16384] {
        let m = random_matrix(3, n, 3);
        let mut seg = SegTreePerm::build(m.clone());
        let mut rng = SmallRng::seed_from_u64(7);
        group.bench_function(BenchmarkId::new("segtree_general", n), |b| {
            b.iter(|| {
                seg.update(
                    rng.gen_range(0..3),
                    rng.gen_range(0..n),
                    Nat(rng.gen_range(0..100)),
                )
            })
        });
        let rows: Vec<Vec<Int>> = (0..3)
            .map(|r| (0..n).map(|cc| Int(m.get(r, cc).0 as i64)).collect())
            .collect();
        let mut ring = RingPerm::build(ColMatrix::from_rows(&rows));
        group.bench_function(BenchmarkId::new("ring_const", n), |b| {
            b.iter(|| {
                ring.update(
                    rng.gen_range(0..3),
                    rng.gen_range(0..n),
                    Int(rng.gen_range(0..100)),
                );
                std::hint::black_box(ring.total())
            })
        });
        let rows: Vec<Vec<Bool>> = (0..3)
            .map(|r| {
                (0..n)
                    .map(|cc| Bool(m.get(r, cc).0.is_multiple_of(2)))
                    .collect()
            })
            .collect();
        let mut fin = FinitePerm::build(ColMatrix::from_rows(&rows));
        group.bench_function(BenchmarkId::new("finite_const", n), |b| {
            b.iter(|| {
                fin.update(
                    rng.gen_range(0..3),
                    rng.gen_range(0..n),
                    Bool(rng.gen_bool(0.5)),
                );
                std::hint::black_box(fin.total())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, perm_eval, perm_update);
criterion_main!(benches);
