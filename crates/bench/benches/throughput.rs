//! E10_throughput: point-query throughput on the n=16k E6 workload —
//! the zero-restore overlay/batch path vs the seed's `peek_with`
//! update/restore baseline (preserved as `agq_bench::legacy`).

use agq_bench::legacy::LegacyEngine;
use agq_bench::{fill_weights, sparse_random};
use agq_core::{compile, CompileOptions, GeneralEngine};
use agq_logic::{normalize, Expr, Formula, Var};
use agq_semiring::MinPlus;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("E10_throughput");
    group.sample_size(20);
    let n = 16_000usize;
    let wl = sparse_random(n, 9);
    let (x, y) = (Var(0), Var(1));
    let expr: Expr<MinPlus> = Expr::Mul(vec![
        Expr::Bracket(Formula::Rel(wl.e, vec![x, y])),
        Expr::Weight(wl.c, vec![x, y]),
        Expr::Weight(wl.w, vec![y]),
    ])
    .sum_over([y]);
    let weights = fill_weights(
        &wl,
        3,
        |r| MinPlus(r.gen_range(1..50)),
        |r| MinPlus(r.gen_range(1..50)),
    );
    let nf = normalize(&expr).unwrap();
    let compiled = compile(&wl.a, &nf, &CompileOptions::default()).unwrap();
    let mut legacy: LegacyEngine<MinPlus> = LegacyEngine::new(compiled.clone(), &weights);
    let mut engine: GeneralEngine<MinPlus> = GeneralEngine::new(compiled, &weights);

    let mut rng = SmallRng::seed_from_u64(1);
    let points: Vec<[u32; 1]> = (0..1024).map(|_| [rng.gen_range(0..n as u32)]).collect();
    let tuples: Vec<&[u32]> = points.iter().map(|p| p.as_slice()).collect();

    group.bench_function(BenchmarkId::new("seed_peek_with_baseline", n), |b| {
        let mut i = 0usize;
        b.iter(|| {
            let out = legacy.query(&points[i % points.len()]);
            i += 1;
            out
        })
    });
    group.bench_function(BenchmarkId::new("update_restore_flat_ir", n), |b| {
        let mut i = 0usize;
        b.iter(|| {
            let out = engine.query_via_updates(&points[i % points.len()]);
            i += 1;
            out
        })
    });
    group.bench_function(BenchmarkId::new("overlay_query", n), |b| {
        let mut i = 0usize;
        b.iter(|| {
            let out = engine.query(&points[i % points.len()]);
            i += 1;
            out
        })
    });
    group.bench_function(BenchmarkId::new("query_batch_1024", n), |b| {
        b.iter(|| engine.query_batch(&tuples))
    });
    group.finish();
}

criterion_group!(benches, throughput);
criterion_main!(benches);
