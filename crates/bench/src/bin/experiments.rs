//! The experiment harness: regenerates every table of `EXPERIMENTS.md`.
//!
//! The paper has no measurement tables — it is a theory paper — so each
//! experiment operationalizes one stated complexity claim (see the
//! per-experiment index in `DESIGN.md`). Run with
//!
//! ```text
//! cargo run -p agq-bench --bin experiments --release
//! ```

use agq_bench::{fill_weights, sparse_random, workload_from};
use agq_core::{compile, CompileOptions, GeneralEngine, RingEngine};
use agq_enumerate::AnswerIndex;
use agq_graph::generators;
use agq_logic::{normalize, Expr, Formula, Var};
use agq_perm::{perm_naive, perm_streaming, ColMatrix, FinitePerm, RingPerm, SegTreePerm};
use agq_semiring::{Bool, Int, MinPlus, Nat, Semiring};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

fn main() {
    // `… -- bench3` (resp. `bench4`, `bench5`) reruns only that PR's
    // experiments and rewrites its BENCH json, leaving earlier records
    // untouched.
    let bench3_only = std::env::args().any(|a| a == "bench3");
    let bench4_only = std::env::args().any(|a| a == "bench4");
    let bench5_only = std::env::args().any(|a| a == "bench5");
    let bench6_only = std::env::args().any(|a| a == "bench6");
    let bench7_only = std::env::args().any(|a| a == "bench7");
    let bench8_only = std::env::args().any(|a| a == "bench8");
    println!("# Experiment harness — sparse-agg");
    println!("(one section per experiment id of DESIGN.md §5)\n");
    if bench5_only {
        let mut record5 = Bench5Record::default();
        e16_direct_access(&mut record5);
        record5.write("BENCH_5.json");
        return;
    }
    if bench6_only {
        let mut record6 = Bench6Record::default();
        e17_vector_sweeps(&mut record6);
        record6.write("BENCH_6.json");
        return;
    }
    if bench7_only {
        let mut record7 = Bench7Record::default();
        e18_persist_restart(&mut record7);
        record7.write("BENCH_7.json");
        return;
    }
    if bench8_only {
        let mut record8 = Bench8Record::default();
        e19_failpoint_overhead(&mut record8);
        record8.write("BENCH_8.json");
        return;
    }
    if !bench3_only && !bench4_only {
        let mut record = BenchRecord::default();
        e1_perm_eval();
        e2_e4_perm_updates(&mut record);
        e5_compile_scaling(&mut record);
        e6_eval_query_update();
        e7_pagerank();
        e8_provenance_delay();
        e9_enum_delay();
        e9b_enum_dynamic();
        e10_nested();
        e11_local_search();
        e12_ablation_coloring();
        e13_throughput(&mut record);
        record.write("BENCH_1.json");
        let mut record2 = Bench2Record::default();
        e9v2_enum_csr(&mut record2);
        record2.write("BENCH_2.json");
    }
    if !bench4_only {
        let mut record3 = Bench3Record::default();
        e9v3_delay_tail(&mut record3);
        e14_sharded_service(&mut record3);
        record3.write("BENCH_3.json");
    }
    if !bench3_only {
        let mut record4 = Bench4Record::default();
        e15_batch_ingestion(&mut record4);
        e9v4_delay_tail(&mut record4);
        record4.write("BENCH_4.json");
    }
    if !bench3_only && !bench4_only {
        let mut record5 = Bench5Record::default();
        e16_direct_access(&mut record5);
        record5.write("BENCH_5.json");
        let mut record6 = Bench6Record::default();
        e17_vector_sweeps(&mut record6);
        record6.write("BENCH_6.json");
        let mut record7 = Bench7Record::default();
        e18_persist_restart(&mut record7);
        record7.write("BENCH_7.json");
        let mut record8 = Bench8Record::default();
        e19_failpoint_overhead(&mut record8);
        record8.write("BENCH_8.json");
    }
}

/// Hardware/build stamp embedded in every BENCH json: throughput records
/// are only comparable between runs with equal stamps (this container is
/// a 1-CPU cgroup; numbers move a lot on real hardware).
fn hardware_json() -> String {
    let cpus = std::thread::available_parallelism().map_or(1, |c| c.get());
    format!(
        "\"hardware\": {{\"cpus\": {cpus}, \"debug_assertions\": {}}}",
        cfg!(debug_assertions)
    )
}

/// Headline numbers of PR 3 (Gaifman-component sharded engine, pooled
/// perm support arena, memoized point-query cones), persisted as
/// `BENCH_3.json`.
#[derive(Default)]
struct Bench3Record {
    // E9v3: E9v2's workload after the pooled arena removed the
    // enumeration path's last steady-state allocations.
    e9v3_n: usize,
    e9v3_answers: u64,
    e9v3_answers_per_sec: f64,
    /// Delay histogram buckets: <1µs, 1–10µs, 10–100µs, 100µs–1ms, ≥1ms.
    e9v3_delay_hist: [u64; 5],
    // E14: sharded update+query service mix, single-shard baseline vs
    // one shard per core.
    e14_n: usize,
    e14_components: usize,
    e14_shards: usize,
    build_ms_single: f64,
    build_ms_sharded: f64,
    query_qps_single: f64,
    query_qps_sharded: f64,
    update_ups_single: f64,
    update_ups_sharded: f64,
    mixed_ops_single: f64,
    mixed_ops_sharded: f64,
}

impl Bench3Record {
    fn write(&self, path: &str) {
        let json = format!(
            "{{\n  \"bench\": 3,\n  {},\n  \"e9v3_delay_tail\": {{\"n\": {}, \"answers\": {}, \"answers_per_sec\": {:.0}, \"delay_hist\": {{\"lt_1us\": {}, \"1_10us\": {}, \"10_100us\": {}, \"100us_1ms\": {}, \"ge_1ms\": {}}}}},\n  \"e14_sharded_service\": {{\"n\": {}, \"components\": {}, \"shards\": {}, \"build_ms\": {{\"single\": {:.1}, \"sharded\": {:.1}}}, \"query_batch_qps\": {{\"single\": {:.0}, \"sharded\": {:.0}}}, \"updates_per_sec\": {{\"single\": {:.0}, \"sharded\": {:.0}}}, \"concurrent_mixed_ops_per_sec\": {{\"single\": {:.0}, \"sharded\": {:.0}}}}}\n}}\n",
            hardware_json(),
            self.e9v3_n,
            self.e9v3_answers,
            self.e9v3_answers_per_sec,
            self.e9v3_delay_hist[0],
            self.e9v3_delay_hist[1],
            self.e9v3_delay_hist[2],
            self.e9v3_delay_hist[3],
            self.e9v3_delay_hist[4],
            self.e14_n,
            self.e14_components,
            self.e14_shards,
            self.build_ms_single,
            self.build_ms_sharded,
            self.query_qps_single,
            self.query_qps_sharded,
            self.update_ups_single,
            self.update_ups_sharded,
            self.mixed_ops_single,
            self.mixed_ops_sharded,
        );
        match std::fs::write(path, &json) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

/// E9v3 — the E9v2 delay-histogram workload, re-measured after the
/// pooled Lemma 39 arena: `candidate`'s per-call `counts` clone and
/// mask-range `Vec` (the only steady-state allocations on the
/// enumeration path) are gone, so a shrinking 10–100µs tail attributes
/// the tail to the allocator, not to perm candidate rebuilds.
fn e9v3_delay_tail(record: &mut Bench3Record) {
    println!("## E9v3  delay-tail attribution: E9v2 workload, allocation-free candidate scan");
    println!("2-path query | n | answers | ans/s | delay hist <1µs,<10µs,<100µs,<1ms,≥1ms");
    let n = 4000usize;
    let (count, aps, hist) = delay_tail(n);
    println!("    | {n:>5} | {count:>7} | {aps:>9.0} | {hist:?}");
    println!("  (compare delay_hist against BENCH_2.json's e9v2_enumerate)\n");
    record.e9v3_n = n;
    record.e9v3_answers = count;
    record.e9v3_answers_per_sec = aps;
    record.e9v3_delay_hist = hist;
}

/// Build the E9 two-path workload at size `n`, enumerate every answer,
/// and bucket the per-answer delays (<1µs, 1–10µs, 10–100µs, 100µs–1ms,
/// ≥1ms). Shared by E9v3 and E9v4.
fn delay_tail(n: usize) -> (u64, f64, [u64; 5]) {
    let wl = sparse_random(n, 7);
    let (x, y, z) = (Var(0), Var(1), Var(2));
    let phi = Formula::Rel(wl.e, vec![x, y])
        .and(Formula::Rel(wl.e, vec![y, z]))
        .and(Formula::neq(x, z));
    let ix = AnswerIndex::build(&wl.a, &phi, &CompileOptions::default()).unwrap();
    let mut hist = [0u64; 5];
    let mut count = 0u64;
    let t_enum = Instant::now();
    let mut it = ix.iter();
    loop {
        let t = Instant::now();
        let step = it.next();
        let d = t.elapsed();
        if step.is_none() {
            break;
        }
        hist[match d.as_nanos() {
            0..=999 => 0,
            1_000..=9_999 => 1,
            10_000..=99_999 => 2,
            100_000..=999_999 => 3,
            _ => 4,
        }] += 1;
        count += 1;
    }
    let total = t_enum.elapsed();
    (count, count as f64 / total.as_secs_f64(), hist)
}

/// The E14 world, shared by E14 and E15: `comps` sparse components of
/// `m` vertices each (random tree plus chords, symmetrized) with a unary
/// mark on even vertices, queried by `E(x, y) ∧ S(x)`.
struct E14World {
    a: std::sync::Arc<agq_structure::Structure>,
    phi: Formula,
    e: agq_structure::RelId,
    edges: Vec<[u32; 2]>,
    comps: usize,
    m: usize,
}

fn e14_world() -> E14World {
    use agq_structure::Signature;
    let comps = 64usize;
    let m = 250usize;
    let n = comps * m;
    let mut sig = Signature::new();
    let e = sig.add_relation("E", 2);
    let s = sig.add_relation("S", 1);
    let mut a = agq_structure::Structure::new(std::sync::Arc::new(sig), n);
    let mut rng = SmallRng::seed_from_u64(14);
    for c in 0..comps {
        let base = (c * m) as u32;
        for i in 1..m as u32 {
            let u = base + i;
            let v = base + rng.gen_range(0..i);
            a.insert(e, &[u, v]);
            a.insert(e, &[v, u]);
        }
    }
    for v in 0..n as u32 {
        if v.is_multiple_of(2) {
            a.insert(s, &[v]);
        }
    }
    let edges: Vec<[u32; 2]> = a
        .relation(e)
        .iter()
        .map(|t| [t.as_slice()[0], t.as_slice()[1]])
        .collect();
    let (x, y) = (Var(0), Var(1));
    let phi = Formula::Rel(e, vec![x, y]).and(Formula::Rel(s, vec![x]));
    E14World {
        a: std::sync::Arc::new(a),
        phi,
        e,
        edges,
        comps,
        m,
    }
}

/// `reps` membership flips over `edges`, presence-tracked so every
/// update is a real flip at generation time. `hot = Some((k, frac))`
/// sends that fraction of the flips to a size-`k` hot set of edges (the
/// service-churn pattern: a handful of rows flapping under a trickle of
/// background edits); `None` flips uniformly at random.
fn flip_script(
    e: agq_structure::RelId,
    edges: &[[u32; 2]],
    reps: usize,
    seed: u64,
    hot: Option<(usize, f64)>,
) -> Vec<agq_core::TupleUpdate> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut present = vec![true; edges.len()];
    let hotset: Vec<usize> = hot
        .map(|(k, _)| (0..k).map(|_| rng.gen_range(0..edges.len())).collect())
        .unwrap_or_default();
    (0..reps)
        .map(|_| {
            let ei = match hot {
                Some((_, frac)) if rng.gen_bool(frac) => hotset[rng.gen_range(0..hotset.len())],
                _ => rng.gen_range(0..edges.len()),
            };
            present[ei] = !present[ei];
            agq_core::TupleUpdate {
                rel: e,
                tuple: edges[ei].to_vec(),
                present: present[ei],
            }
        })
        .collect()
}

/// Headline numbers of PR 6 (batched update ingestion with coalesced
/// dirty propagation), persisted as `BENCH_4.json`.
#[derive(Default)]
struct Bench4Record {
    n: usize,
    components: usize,
    uniform_seq_ups: f64,
    uniform_batch_ups: [f64; 4],
    churn_hot_keys: usize,
    churn_hot_fraction: f64,
    churn_seq_ups: f64,
    churn_batch_ups: [f64; 4],
    sharded_shards: usize,
    sharded_churn_seq_ups: f64,
    sharded_churn_batch64_ups: f64,
    // E9v4: the delay-tail workload re-measured after the batch plumbing.
    e9v4_n: usize,
    e9v4_answers: u64,
    e9v4_answers_per_sec: f64,
    e9v4_delay_hist: [u64; 5],
}

/// The batch sizes of the E15 sweep.
const E15_BATCH_SIZES: [usize; 4] = [1, 8, 64, 512];

impl Bench4Record {
    fn write(&self, path: &str) {
        let sweep = |ups: &[f64; 4]| {
            E15_BATCH_SIZES
                .iter()
                .zip(ups)
                .map(|(bs, u)| format!("\"{bs}\": {u:.0}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let ratio = |batch: f64, seq: f64| if seq > 0.0 { batch / seq } else { 0.0 };
        let json = format!(
            "{{\n  \"bench\": 4,\n  {},\n  \"e15_batch_ingestion\": {{\"n\": {}, \"components\": {}, \"updates\": 40000,\n    \"uniform\": {{\"sequential_ups\": {:.0}, \"batch_ups\": {{{}}}, \"batch64_speedup\": {:.2}}},\n    \"churn\": {{\"hot_keys\": {}, \"hot_fraction\": {:.2}, \"sequential_ups\": {:.0}, \"batch_ups\": {{{}}}, \"batch64_speedup\": {:.2}}},\n    \"sharded_churn\": {{\"shards\": {}, \"sequential_ups\": {:.0}, \"batch64_ups\": {:.0}, \"batch64_speedup\": {:.2}}}}},\n  \"e9v4_delay_tail\": {{\"n\": {}, \"answers\": {}, \"answers_per_sec\": {:.0}, \"delay_hist\": {{\"lt_1us\": {}, \"1_10us\": {}, \"10_100us\": {}, \"100us_1ms\": {}, \"ge_1ms\": {}}}}}\n}}\n",
            hardware_json(),
            self.n,
            self.components,
            self.uniform_seq_ups,
            sweep(&self.uniform_batch_ups),
            ratio(self.uniform_batch_ups[2], self.uniform_seq_ups),
            self.churn_hot_keys,
            self.churn_hot_fraction,
            self.churn_seq_ups,
            sweep(&self.churn_batch_ups),
            ratio(self.churn_batch_ups[2], self.churn_seq_ups),
            self.sharded_shards,
            self.sharded_churn_seq_ups,
            self.sharded_churn_batch64_ups,
            ratio(self.sharded_churn_batch64_ups, self.sharded_churn_seq_ups),
            self.e9v4_n,
            self.e9v4_answers,
            self.e9v4_answers_per_sec,
            self.e9v4_delay_hist[0],
            self.e9v4_delay_hist[1],
            self.e9v4_delay_hist[2],
            self.e9v4_delay_hist[3],
            self.e9v4_delay_hist[4],
        );
        match std::fs::write(path, &json) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

/// E15 — PR 6 headline: batched update ingestion. `apply_batch` vs
/// one-by-one `apply_update` on the E14 world, swept over batch sizes,
/// on two scripts:
///
/// * **uniform** random membership flips — the per-update cones are
///   disjoint, so batch and sequential do identical gate work and the
///   measured difference is pure ingestion overhead (per-call locks,
///   staging, dirty-heap bookkeeping);
/// * **hot-key churn** (95% of flips over 4 flapping edges) — repeated
///   flips of a tuple cancel inside a batch, so coalescing collapses the
///   per-incoming-update cost. This is where batching actually wins, and
///   the release-gated `batch_regression.rs` test pins it at ≥1.5×.
fn e15_batch_ingestion(record: &mut Bench4Record) {
    use agq_enumerate::{EnumQueryEngine, GeneralShardedEngine, ShardedEngine};
    println!("## E15  batched ingestion: apply_batch vs apply_update (E14 world)");
    let w = e14_world();
    record.n = w.comps * w.m;
    record.components = w.comps;
    let (hot_keys, hot_fraction) = (4usize, 0.95f64);
    record.churn_hot_keys = hot_keys;
    record.churn_hot_fraction = hot_fraction;
    let reps = 40_000usize;
    let opts = CompileOptions::default();
    println!("script | sequential ups | batch=1 | batch=8 | batch=64 | batch=512");
    for (label, script) in [
        ("uniform", flip_script(w.e, &w.edges, reps, 15, None)),
        (
            "churn",
            flip_script(w.e, &w.edges, reps, 99, Some((hot_keys, hot_fraction))),
        ),
    ] {
        let mut eng: EnumQueryEngine<Nat, SegTreePerm<Nat>> =
            EnumQueryEngine::build_dynamic(&w.a, &w.phi, &opts).unwrap();
        // warm: page in the plan and fault in the touched cones; the
        // script toggles presence, so it replays cleanly from any state
        for u in &script {
            eng.apply_update(u).unwrap();
        }
        let t_seq = time(|| {
            for u in &script {
                eng.apply_update(u).unwrap();
            }
        });
        let seq_ups = reps as f64 / t_seq.as_secs_f64();
        let mut batch_ups = [0f64; 4];
        for (i, &bs) in E15_BATCH_SIZES.iter().enumerate() {
            let t = time(|| {
                for chunk in script.chunks(bs) {
                    eng.apply_batch(chunk).unwrap();
                }
            });
            batch_ups[i] = reps as f64 / t.as_secs_f64();
        }
        println!(
            "    {label:>7} | {seq_ups:>12.0} | {:>9.0} | {:>9.0} | {:>9.0} | {:>9.0}",
            batch_ups[0], batch_ups[1], batch_ups[2], batch_ups[3]
        );
        if label == "uniform" {
            record.uniform_seq_ups = seq_ups;
            record.uniform_batch_ups = batch_ups;
        } else {
            record.churn_seq_ups = seq_ups;
            record.churn_batch_ups = batch_ups;
        }
    }
    // the same churn script through the sharded engine: one write lock
    // and one coalesced sweep per touched shard per batch
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let script = flip_script(w.e, &w.edges, reps, 99, Some((hot_keys, hot_fraction)));
    let eng: GeneralShardedEngine<Nat> =
        ShardedEngine::build(&w.a, &w.phi, &opts, cores.max(2)).unwrap();
    for u in &script {
        eng.apply_update(u).unwrap();
    }
    let t_seq = time(|| {
        for u in &script {
            eng.apply_update(u).unwrap();
        }
    });
    let t_b64 = time(|| {
        for chunk in script.chunks(64) {
            eng.apply_batch(chunk).unwrap();
        }
    });
    record.sharded_shards = eng.num_shards();
    record.sharded_churn_seq_ups = reps as f64 / t_seq.as_secs_f64();
    record.sharded_churn_batch64_ups = reps as f64 / t_b64.as_secs_f64();
    println!(
        "    churn via {} shards: sequential {:.0} ups, batch=64 {:.0} ups ({:.2}×)\n",
        eng.num_shards(),
        record.sharded_churn_seq_ups,
        record.sharded_churn_batch64_ups,
        record.sharded_churn_batch64_ups / record.sharded_churn_seq_ups
    );
}

/// E9v4 — the E9v3 delay-tail workload re-measured after the batch
/// ingestion plumbing: the enumeration path itself was not supposed to
/// change, so the histogram should match BENCH_3.json's within noise.
fn e9v4_delay_tail(record: &mut Bench4Record) {
    println!("## E9v4  delay-tail re-measure: enumeration after the batch-ingestion changes");
    let n = 4000usize;
    let (count, aps, hist) = delay_tail(n);
    println!("    | {n:>5} | {count:>7} | {aps:>9.0} | {hist:?}");
    println!("  (compare delay_hist against BENCH_3.json's e9v3_delay_tail)\n");
    record.e9v4_n = n;
    record.e9v4_answers = count;
    record.e9v4_answers_per_sec = aps;
    record.e9v4_delay_hist = hist;
}

/// Headline numbers of PR 7 (O(depth) direct access to the k-th
/// answer), persisted as `BENCH_5.json`.
#[derive(Default)]
struct Bench5Record {
    n: usize,
    answers: u64,
    seek_p50_ns: u64,
    seek_p99_ns: u64,
    seek_max_ns: u64,
    /// `iter().nth(count/2)` wall time — what direct access replaces.
    nth_walk_ms: f64,
    samples_per_sec: f64,
    ingest_base_ups: f64,
    ingest_ranks_live_ups: f64,
    ingest_with_reads_ups: f64,
    /// `(t_ranks_live - t_base) / t_base` — what rank maintenance adds
    /// to ingestion itself under the lazy design: count state live
    /// (pending patches accumulating) for the whole run plus the one
    /// flush that brings ranks current at the end.
    rank_repair_overhead_frac: f64,
    /// `(t_with_reads - t_base) / t_base` — the serving-side amortized
    /// cost when every batch is followed by a rank read: each read
    /// flushes that batch's whole update cone (no repair schedule
    /// avoids this — an eager piggyback would pay the same sweep).
    read_per_batch_overhead_frac: f64,
}

impl Bench5Record {
    fn write(&self, path: &str) {
        let json = format!(
            "{{\n  \"bench\": 5,\n  {},\n  \"e16_direct_access\": {{\"n\": {}, \"answers\": {},\n    \"seek_ns\": {{\"p50\": {}, \"p99\": {}, \"max\": {}}},\n    \"nth_walk_ms\": {:.2}, \"samples_per_sec\": {:.0},\n    \"ingestion\": {{\"batch64_base_ups\": {:.0}, \"batch64_ranks_live_ups\": {:.0}, \"batch64_with_rank_reads_ups\": {:.0},\n      \"rank_repair_overhead_frac\": {:.4}, \"read_per_batch_overhead_frac\": {:.4}}}}}\n}}\n",
            hardware_json(),
            self.n,
            self.answers,
            self.seek_p50_ns,
            self.seek_p99_ns,
            self.seek_max_ns,
            self.nth_walk_ms,
            self.samples_per_sec,
            self.ingest_base_ups,
            self.ingest_ranks_live_ups,
            self.ingest_with_reads_ups,
            self.rank_repair_overhead_frac,
            self.read_per_batch_overhead_frac,
        );
        match std::fs::write(path, &json) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

/// E16 — PR 7 headline: `answer(k)` direct access on the E9 two-path
/// workload at n = 16k. Three measurements:
///
/// * **seek latency** — `answer(k)` over 1000 ranks spread across the
///   full range, against the `iter().nth(count/2)` walk it replaces;
/// * **sampling throughput** — `sample(seed)` per second (one splitmix64
///   plus one descent each);
/// * **rank-repair ingestion overhead** — batch-64 flip ingestion on a
///   fresh index (counts never materialized, the pre-PR cost) vs an
///   index with count state live for the whole run and one flush at the
///   end (the lazy design's ingestion-side cost: pending appends are
///   O(1) per update, repair deferred to the first read) vs an index
///   serving one `answer(k)` after every batch (count flush +
///   prefix-table rebuild + descent each time — the serving-side
///   amortization, dominated by each batch's update cone).
fn e16_direct_access(record: &mut Bench5Record) {
    println!("## E16  direct access: answer(k) seek latency and rank-repair overhead");
    let n = 16_000usize;
    let wl = sparse_random(n, 7);
    let (x, y, z) = (Var(0), Var(1), Var(2));
    let phi = Formula::Rel(wl.e, vec![x, y])
        .and(Formula::Rel(wl.e, vec![y, z]))
        .and(Formula::neq(x, z));
    let opts = CompileOptions::default();
    let ix = AnswerIndex::build_dynamic(&wl.a, &phi, &opts).unwrap();
    let total = ix.count();
    record.n = n;
    record.answers = total;

    // seek latency: 1000 ranks spread over the whole range (first probe
    // pays the one-time count build, so warm it out of the measurement)
    ix.answer(0).unwrap();
    let probes: Vec<u64> = (0..1000).map(|i| (total - 1) * i / 999).collect();
    let mut seek_ns: Vec<u64> = probes
        .iter()
        .map(|&k| {
            let t = Instant::now();
            std::hint::black_box(ix.answer(k).unwrap());
            t.elapsed().as_nanos() as u64
        })
        .collect();
    seek_ns.sort_unstable();
    record.seek_p50_ns = seek_ns[seek_ns.len() / 2];
    record.seek_p99_ns = seek_ns[seek_ns.len() - 1 - seek_ns.len() / 100];
    record.seek_max_ns = *seek_ns.last().unwrap();
    let t = Instant::now();
    let mut it = ix.iter();
    let mut mid = None;
    for _ in 0..=total / 2 {
        mid = it.next();
    }
    record.nth_walk_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(mid, ix.answer(total / 2));
    println!(
        "    n={n} answers={total}: seek p50 {}ns p99 {}ns max {}ns; iter().nth(n/2) {:.1}ms",
        record.seek_p50_ns, record.seek_p99_ns, record.seek_max_ns, record.nth_walk_ms
    );

    // uniform sampling throughput
    let reps = 20_000u64;
    let t = time(|| {
        for s in 0..reps {
            std::hint::black_box(ix.sample(s));
        }
    });
    record.samples_per_sec = reps as f64 / t.as_secs_f64();
    println!("    sample(seed): {:.0}/s", record.samples_per_sec);

    // rank-repair overhead: batch-64 flip ingestion, fresh index (counts
    // never built — no rank bookkeeping at all) vs one answer(k) per batch
    let edges: Vec<[u32; 2]> =
        wl.a.relation(wl.e)
            .iter()
            .map(|t| [t.as_slice()[0], t.as_slice()[1]])
            .collect();
    let reps = 20_000usize;
    let script = flip_script(wl.e, &edges, reps, 23, None);
    let mut base_ix = AnswerIndex::build_dynamic(&wl.a, &phi, &opts).unwrap();
    let t_base = time(|| {
        for chunk in script.chunks(64) {
            base_ix.apply_batch(chunk).unwrap();
        }
    });
    let mut live_ix = AnswerIndex::build_dynamic(&wl.a, &phi, &opts).unwrap();
    live_ix.answer(0).unwrap(); // materialize counts outside the timing
    let t_live = time(|| {
        for chunk in script.chunks(64) {
            live_ix.apply_batch(chunk).unwrap();
        }
        std::hint::black_box(live_ix.count()); // one flush brings ranks current
    });
    let mut read_ix = AnswerIndex::build_dynamic(&wl.a, &phi, &opts).unwrap();
    read_ix.answer(0).unwrap(); // materialize counts outside the timing
    let mut k = 1u64;
    let t_reads = time(|| {
        for chunk in script.chunks(64) {
            read_ix.apply_batch(chunk).unwrap();
            let c = read_ix.count();
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
            std::hint::black_box(read_ix.answer(k % c));
        }
    });
    record.ingest_base_ups = reps as f64 / t_base.as_secs_f64();
    record.ingest_ranks_live_ups = reps as f64 / t_live.as_secs_f64();
    record.ingest_with_reads_ups = reps as f64 / t_reads.as_secs_f64();
    record.rank_repair_overhead_frac =
        (t_live.as_secs_f64() - t_base.as_secs_f64()) / t_base.as_secs_f64();
    record.read_per_batch_overhead_frac =
        (t_reads.as_secs_f64() - t_base.as_secs_f64()) / t_base.as_secs_f64();
    println!(
        "    batch=64 ingestion: base {:.0} ups, ranks live {:.0} ups (repair overhead {:.1}%), read-per-batch {:.0} ups (+{:.1}%)\n",
        record.ingest_base_ups,
        record.ingest_ranks_live_ups,
        100.0 * record.rank_repair_overhead_frac,
        record.ingest_with_reads_ups,
        100.0 * record.read_per_batch_overhead_frac
    );
}

/// Headline numbers of PR 8 (vectorized sweeps: bulk semiring kernels +
/// dense-run add-gate evaluation), persisted as `BENCH_6.json`.
#[derive(Default)]
struct Bench6Record {
    n: usize,
    add_gates: usize,
    full_run_gates: usize,
    total_children: usize,
    dense_children: usize,
    coverage: f64,
    sweep_gather_us: f64,
    sweep_dense_us: f64,
    sweep_speedup: f64,
    dense_children_per_sec: f64,
    build_ms: f64,
    count_build_ms: f64,
    flush_batch64_ups: f64,
    churn_seq_ups: f64,
    churn_batch64_ups: f64,
}

impl Bench6Record {
    fn write(&self, path: &str) {
        let json = format!(
            "{{\n  \"bench\": 6,\n  {},\n  \"e17_vector_sweeps\": {{\"n\": {},\n    \"dense_run_coverage\": {{\"add_gates\": {}, \"full_run_gates\": {}, \"total_children\": {}, \"dense_children\": {}, \"coverage\": {:.4}}},\n    \"kernel_ab\": {{\"gather_us\": {:.1}, \"dense_us\": {:.1}, \"speedup\": {:.2}, \"dense_children_per_sec\": {:.0}}},\n    \"e9_count_index\": {{\"build_ms\": {:.1}, \"count_build_ms\": {:.1}, \"flush_batch64_ups\": {:.0}}},\n    \"e15_churn_remeasure\": {{\"seq_ups\": {:.0}, \"batch64_ups\": {:.0}}}}}\n}}\n",
            hardware_json(),
            self.n,
            self.add_gates,
            self.full_run_gates,
            self.total_children,
            self.dense_children,
            self.coverage,
            self.sweep_gather_us,
            self.sweep_dense_us,
            self.sweep_speedup,
            self.dense_children_per_sec,
            self.build_ms,
            self.count_build_ms,
            self.flush_batch64_ups,
            self.churn_seq_ups,
            self.churn_batch64_ups,
        );
        match std::fs::write(path, &json) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

/// E17 — PR 8 headline: the vectorized sweep layer, measured on the E9
/// count-side circuit (the `Nat`-typed rank-table evaluator of PR 7).
/// Four measurements:
///
/// * **dense-run coverage** — fraction of add-gate child mass lying in
///   contiguous id runs ≥ 4 after the compiler's `cluster_adds` relabel
///   (the mass eligible for the bulk `sum_slice` tier);
/// * **kernel A/B** — one full add-gate sweep over the dense-run mass,
///   bulk slice kernels (fed by the plan's precomputed runs) vs the
///   canonical 4-lane scalar gather, same circuit and same value
///   vector, min-of-7 timing;
/// * **E9 build/flush** — answer-index build, first count (rank-table)
///   materialization — a full `eval_gates` sweep, now on the dense
///   tier — and batch-64 flip ingestion with a count flush per batch
///   (the delta-repair path);
/// * **E15 churn re-measure** — the hot-key churn ingestion of BENCH_4
///   replayed on this PR's engine (the adds repaired there are now wide
///   and dense, so this guards against coalescing regressions).
fn e17_vector_sweeps(record: &mut Bench6Record) {
    use agq_circuit::{eval_gates, EvalPlan, GateDef, GateId};
    use agq_core::{eliminate_quantifiers, SlotKey};
    use agq_enumerate::EnumQueryEngine;

    println!("## E17  vectorized sweeps: dense-run kernels on the E9 count circuit");
    let n = 20_000usize;
    record.n = n;
    let wl = sparse_random(n, 7);
    let (x, y, z) = (Var(0), Var(1), Var(2));
    let phi = Formula::Rel(wl.e, vec![x, y])
        .and(Formula::Rel(wl.e, vec![y, z]))
        .and(Formula::neq(x, z));

    // The count-side circuit, exactly as the rank tables compile it:
    // Σ_{x,y,z} [φ] with dynamic atoms over the Nat carrier.
    let expr = Expr::<Nat>::Bracket(phi.clone()).sum_over([x, y, z]);
    let opts = CompileOptions {
        dynamic_atoms: true,
        ..CompileOptions::default()
    };
    let (cexpr, a2) = eliminate_quantifiers(&expr, &wl.a, &opts).unwrap();
    let nf = normalize(&cexpr).unwrap();
    let compiled = compile(&a2, &nf, &opts).unwrap();
    let slots: Vec<Nat> = compiled
        .slots
        .iter()
        .map(|(_, key)| match key {
            SlotKey::AtomPos(r, t) => Nat(u64::from(a2.holds(r, t.as_slice()))),
            SlotKey::AtomNeg(r, t) => Nat(u64::from(!a2.holds(r, t.as_slice()))),
            _ => unreachable!("count expression has no weights or free vars"),
        })
        .collect();
    let plan = EvalPlan::new(compiled.circuit.clone());
    let stats = plan.dense_run_stats();
    record.add_gates = stats.add_gates;
    record.full_run_gates = stats.full_run_gates;
    record.total_children = stats.total_children;
    record.dense_children = stats.dense_children;
    record.coverage = stats.coverage();
    println!(
        "    coverage: {} add gates ({} full-run), {}/{} children dense ({:.1}%)",
        stats.add_gates,
        stats.full_run_gates,
        stats.dense_children,
        stats.total_children,
        100.0 * record.coverage
    );

    // Kernel A/B over the dense-run mass (gates with a run ≥ 4): bulk
    // slice sweep vs the canonical 4-lane gather, same value vector.
    let values = eval_gates(&compiled.circuit, &slots, &compiled.lits);
    let circuit = &compiled.circuit;
    let dense_adds: Vec<&[GateId]> = circuit
        .gates()
        .iter()
        .enumerate()
        .filter_map(|(g, def)| match def {
            GateDef::Add(r)
                if plan
                    .add_runs(g as u32)
                    .iter()
                    .any(|&(_, len)| len as usize >= 4) =>
            {
                Some(circuit.children(*r))
            }
            _ => None,
        })
        .collect();
    let runs_flat: Vec<(u32, u32)> = circuit
        .gates()
        .iter()
        .enumerate()
        .filter(|(_, def)| matches!(def, GateDef::Add(_)))
        .filter(|(g, _)| {
            plan.add_runs(*g as u32)
                .iter()
                .any(|&(_, len)| len as usize >= 4)
        })
        .flat_map(|(g, _)| plan.add_runs(g as u32).iter().copied())
        .collect();
    let gather = || {
        let mut check = Nat(0);
        for kids in &dense_adds {
            const LANES: usize = 4;
            let s = if kids.len() < 2 * LANES {
                let mut acc = Nat(0);
                for c in *kids {
                    acc.add_assign(&values[c.0 as usize]);
                }
                acc
            } else {
                let mut lanes = [Nat(0); LANES];
                let chunks = kids.chunks_exact(LANES);
                let rest = chunks.remainder();
                for chunk in chunks {
                    for (lane, c) in lanes.iter_mut().zip(chunk) {
                        lane.add_assign(&values[c.0 as usize]);
                    }
                }
                let [a, b, c, d] = lanes;
                let mut acc = a.add(&b).add(&c.add(&d));
                for g in rest {
                    acc.add_assign(&values[g.0 as usize]);
                }
                acc
            };
            check.add_assign(&s);
        }
        check
    };
    let dense = || {
        let mut check = Nat(0);
        for &(lo, len) in &runs_flat {
            let seg = &values[lo as usize..(lo + len) as usize];
            if len >= 4 {
                check.add_assign(&Nat::sum_slice(seg));
            } else {
                for v in seg {
                    check.add_assign(v);
                }
            }
        }
        check
    };
    assert_eq!(gather().0, dense().0, "A/B sweeps must agree");
    let reps = 100u32;
    let timed = |f: &dyn Fn() -> Nat| -> Duration {
        let mut best = Duration::MAX;
        for _ in 0..7 {
            let t = Instant::now();
            for _ in 0..reps {
                std::hint::black_box(f());
            }
            best = best.min(t.elapsed() / reps);
        }
        best
    };
    let t_gather = timed(&gather);
    let t_dense = timed(&dense);
    let mass: usize = dense_adds.iter().map(|k| k.len()).sum();
    record.sweep_gather_us = t_gather.as_secs_f64() * 1e6;
    record.sweep_dense_us = t_dense.as_secs_f64() * 1e6;
    record.sweep_speedup = t_gather.as_secs_f64() / t_dense.as_secs_f64();
    record.dense_children_per_sec = mass as f64 / t_dense.as_secs_f64();
    println!(
        "    sweep A/B ({} gates, {} children): gather {:.1}µs, dense {:.1}µs — {:.2}× ({:.0}M children/s)",
        dense_adds.len(),
        mass,
        record.sweep_gather_us,
        record.sweep_dense_us,
        record.sweep_speedup,
        record.dense_children_per_sec / 1e6
    );

    // E9 build / count-build / flush: the answer index whose rank
    // tables ride these kernels.
    let opts = CompileOptions::default();
    let t_build = time(|| {
        std::hint::black_box(AnswerIndex::build_dynamic(&wl.a, &phi, &opts).unwrap());
    });
    let mut ix = AnswerIndex::build_dynamic(&wl.a, &phi, &opts).unwrap();
    let t_count = time(|| {
        std::hint::black_box(ix.count());
    });
    let edges: Vec<[u32; 2]> =
        wl.a.relation(wl.e)
            .iter()
            .map(|t| [t.as_slice()[0], t.as_slice()[1]])
            .collect();
    let flips = 20_000usize;
    let script = flip_script(wl.e, &edges, flips, 23, None);
    let t_flush = time(|| {
        for chunk in script.chunks(64) {
            ix.apply_batch(chunk).unwrap();
            std::hint::black_box(ix.count());
        }
    });
    record.build_ms = t_build.as_secs_f64() * 1e3;
    record.count_build_ms = t_count.as_secs_f64() * 1e3;
    record.flush_batch64_ups = flips as f64 / t_flush.as_secs_f64();
    println!(
        "    E9 index: build {:.1}ms, count build {:.1}ms, batch=64 flip+flush {:.0} ups",
        record.build_ms, record.count_build_ms, record.flush_batch64_ups
    );

    // E15 churn re-measure: hot-key flip ingestion on the E14 world.
    let w = e14_world();
    let script = flip_script(w.e, &w.edges, 40_000, 99, Some((4, 0.95)));
    let mut eng: EnumQueryEngine<Nat, SegTreePerm<Nat>> =
        EnumQueryEngine::build_dynamic(&w.a, &w.phi, &opts).unwrap();
    for u in &script {
        eng.apply_update(u).unwrap();
    }
    let t_seq = time(|| {
        for u in &script {
            eng.apply_update(u).unwrap();
        }
    });
    let t_b64 = time(|| {
        for chunk in script.chunks(64) {
            eng.apply_batch(chunk).unwrap();
        }
    });
    record.churn_seq_ups = script.len() as f64 / t_seq.as_secs_f64();
    record.churn_batch64_ups = script.len() as f64 / t_b64.as_secs_f64();
    println!(
        "    E15 churn: sequential {:.0} ups, batch=64 {:.0} ups ({:.2}×)\n",
        record.churn_seq_ups,
        record.churn_batch64_ups,
        record.churn_batch64_ups / record.churn_seq_ups
    );
}

/// E14 — the sharded service: a multi-component database behind a
/// `ShardedEngine`, serving a mixed update+query workload, single-shard
/// baseline vs one shard per core. On a 1-CPU container the sharded
/// numbers show routing overhead, not speedup — re-measure on real
/// hardware (the concurrency itself is exercised by the release-mode
/// smoke test in CI).
fn e14_sharded_service(record: &mut Bench3Record) {
    use agq_enumerate::{GeneralShardedEngine, ShardedEngine};
    println!("## E14  sharded service: Gaifman-component shards, update+query mix");
    let w = e14_world();
    let (comps, m, n) = (w.comps, w.m, w.comps * w.m);
    let (a, phi, e, edges) = (w.a, w.phi, w.e, w.edges);
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let shard_target = cores.max(2);
    println!("shards | build | query_batch q/s | updates/s | concurrent mixed ops/s");
    for (label, max_shards) in [("single", 1usize), ("sharded", shard_target)] {
        let t0 = Instant::now();
        let eng: GeneralShardedEngine<Nat> =
            ShardedEngine::build(&a, &phi, &CompileOptions::default(), max_shards).unwrap();
        let build = t0.elapsed();
        // query batches
        let mut rng = SmallRng::seed_from_u64(15);
        let points: Vec<[u32; 2]> = (0..4096)
            .map(|_| {
                let c = rng.gen_range(0..comps as u32) * m as u32;
                [
                    c + rng.gen_range(0..m as u32),
                    c + rng.gen_range(0..m as u32),
                ]
            })
            .collect();
        let tuples: Vec<&[u32]> = points.iter().map(|p| p.as_slice()).collect();
        let t_q = time(|| {
            std::hint::black_box(eng.query_batch(&tuples));
        });
        let qps = tuples.len() as f64 / t_q.as_secs_f64();
        // routed updates (genuine membership flips)
        let reps = 20_000usize;
        let mut present = vec![true; edges.len()];
        let t_u = time(|| {
            for _ in 0..reps {
                let ei = rng.gen_range(0..edges.len());
                present[ei] = !present[ei];
                let u = agq_core::TupleUpdate {
                    rel: e,
                    tuple: edges[ei].to_vec(),
                    present: present[ei],
                };
                eng.apply_update(&u).unwrap();
            }
        });
        let ups = reps as f64 / t_u.as_secs_f64();
        // concurrent mixed load: one writer thread + one batch-reader
        // thread (each op counted once)
        let writer_edges = &edges;
        let eng_ref = &eng;
        let mixed_updates = 10_000usize;
        let mixed_batches = 16usize;
        let t_m = time(|| {
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    let mut rng = SmallRng::seed_from_u64(16);
                    let mut present = vec![true; writer_edges.len()];
                    for _ in 0..mixed_updates {
                        let ei = rng.gen_range(0..writer_edges.len());
                        present[ei] = !present[ei];
                        let u = agq_core::TupleUpdate {
                            rel: e,
                            tuple: writer_edges[ei].to_vec(),
                            present: present[ei],
                        };
                        eng_ref.apply_update(&u).unwrap();
                    }
                });
                scope.spawn(|| {
                    for _ in 0..mixed_batches {
                        std::hint::black_box(eng_ref.query_batch(&tuples));
                    }
                });
            });
        });
        let mixed_ops = (mixed_updates + mixed_batches * tuples.len()) as f64 / t_m.as_secs_f64();
        println!(
            "    {label:>7} ({:>3} shards) | {build:>9?} | {qps:>11.0} | {ups:>9.0} | {mixed_ops:>9.0}",
            eng.num_shards()
        );
        if max_shards == 1 {
            record.build_ms_single = build.as_secs_f64() * 1e3;
            record.query_qps_single = qps;
            record.update_ups_single = ups;
            record.mixed_ops_single = mixed_ops;
        } else {
            record.e14_n = n;
            record.e14_components = comps;
            record.e14_shards = eng.num_shards();
            record.build_ms_sharded = build.as_secs_f64() * 1e3;
            record.query_qps_sharded = qps;
            record.update_ups_sharded = ups;
            record.mixed_ops_sharded = mixed_ops;
        }
    }
    println!();
}

/// Headline numbers of PR 2 (CSR enumeration machine + compiler
/// instantiation caches), persisted as `BENCH_2.json`.
#[derive(Default)]
struct Bench2Record {
    n: usize,
    build_ms: f64,
    answers: u64,
    answers_per_sec: f64,
    /// Delay histogram buckets: <1µs, 1–10µs, 10–100µs, 100µs–1ms, ≥1ms.
    delay_hist: [u64; 5],
    apply_update_ns: f64,
    rebuild_ms: f64,
}

impl Bench2Record {
    /// `AnswerIndex::build` time for this workload as measured at the
    /// end of PR 1 on this hardware (the super-linear instantiation
    /// re-scan; the seed-era number in the issue was 14 s).
    const PR1_BUILD_MS: f64 = 11_415.0;

    fn write(&self, path: &str) {
        let update_speedup = if self.apply_update_ns > 0.0 {
            self.rebuild_ms * 1e6 / self.apply_update_ns
        } else {
            0.0
        };
        let json = format!(
            "{{\n  \"bench\": 2,\n  {},\n  \"e9v2_build\": {{\"n\": {}, \"build_ms\": {:.1}, \"pr1_build_ms\": {:.1}, \"build_speedup\": {:.2}}},\n  \"e9v2_enumerate\": {{\"answers\": {}, \"answers_per_sec\": {:.0}, \"delay_hist\": {{\"lt_1us\": {}, \"1_10us\": {}, \"10_100us\": {}, \"100us_1ms\": {}, \"ge_1ms\": {}}}}},\n  \"e9v2_update\": {{\"apply_update_ns\": {:.1}, \"full_rebuild_ms\": {:.1}, \"update_speedup\": {:.0}}}\n}}\n",
            hardware_json(),
            self.n,
            self.build_ms,
            Self::PR1_BUILD_MS,
            Self::PR1_BUILD_MS / self.build_ms,
            self.answers,
            self.answers_per_sec,
            self.delay_hist[0],
            self.delay_hist[1],
            self.delay_hist[2],
            self.delay_hist[3],
            self.delay_hist[4],
            self.apply_update_ns,
            self.rebuild_ms,
            update_speedup,
        );
        match std::fs::write(path, &json) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

/// E9v2 — PR 2 headline: CSR enumeration machine over the E9 workload.
/// Build time (the compiler re-scan fix), enumeration throughput with a
/// delay histogram, and incremental `apply_update` vs a full rebuild.
fn e9v2_enum_csr(record: &mut Bench2Record) {
    println!(
        "## E9v2  CSR enumeration: build / throughput / delay histogram / incremental updates"
    );
    println!("2-path query | n | build | answers | ans/s | delay hist <1µs,<10µs,<100µs,<1ms,≥1ms");
    for &n in &[1000usize, 2000, 4000] {
        let wl = sparse_random(n, 7);
        let (x, y, z) = (Var(0), Var(1), Var(2));
        let phi = Formula::Rel(wl.e, vec![x, y])
            .and(Formula::Rel(wl.e, vec![y, z]))
            .and(Formula::neq(x, z));
        let t0 = Instant::now();
        let ix = AnswerIndex::build(&wl.a, &phi, &CompileOptions::default()).unwrap();
        let build = t0.elapsed();
        let mut hist = [0u64; 5];
        let mut count = 0u64;
        let t_enum = Instant::now();
        let mut it = ix.iter();
        loop {
            let t = Instant::now();
            let step = it.next();
            let d = t.elapsed();
            if step.is_none() {
                break; // the exhausted call is not an answer delay
            }
            hist[match d.as_nanos() {
                0..=999 => 0,
                1_000..=9_999 => 1,
                10_000..=99_999 => 2,
                100_000..=999_999 => 3,
                _ => 4,
            }] += 1;
            count += 1;
        }
        let total = t_enum.elapsed();
        let aps = count as f64 / total.as_secs_f64();
        println!(
            "    | {n:>5} | {build:>9?} | {count:>7} | {aps:>9.0} | {:?}",
            hist
        );
        if n == 4000 {
            record.n = n;
            record.build_ms = build.as_secs_f64() * 1e3;
            record.answers = count;
            record.answers_per_sec = aps;
            record.delay_hist = hist;
        }
    }

    // Incremental maintenance vs rebuild: dynamic edge query at n=4000.
    let n = 4000;
    let wl = sparse_random(n, 23);
    let (x, y) = (Var(0), Var(1));
    let phi = Formula::Rel(wl.e, vec![x, y]);
    let mut ix = AnswerIndex::build_dynamic(&wl.a, &phi, &CompileOptions::default()).unwrap();
    let edges: Vec<[u32; 2]> =
        wl.a.relation(wl.e)
            .iter()
            .map(|t| [t.as_slice()[0], t.as_slice()[1]])
            .collect();
    let mut rng = SmallRng::seed_from_u64(3);
    let reps = 5000u32;
    // Every timed update is a genuine membership flip (tracking current
    // state), so the per-update cost includes the cone repair.
    let mut present = vec![true; edges.len()];
    let t_upd = time(|| {
        for _ in 0..reps {
            let ei = rng.gen_range(0..edges.len());
            present[ei] = !present[ei];
            let u = agq_core::TupleUpdate {
                rel: wl.e,
                tuple: edges[ei].to_vec(),
                present: present[ei],
            };
            ix.apply_update(&u).unwrap();
        }
    }) / reps;
    let t_rebuild = time(|| {
        std::hint::black_box(
            AnswerIndex::build_dynamic(&wl.a, &phi, &CompileOptions::default()).unwrap(),
        );
    });
    record.apply_update_ns = t_upd.as_nanos() as f64;
    record.rebuild_ms = t_rebuild.as_secs_f64() * 1e3;
    println!(
        "    incremental apply_update: {t_upd:?}/update vs full rebuild {t_rebuild:?} \
         ({:.0}× faster per single-tuple update)\n",
        t_rebuild.as_secs_f64() / t_upd.as_secs_f64()
    );
}

/// Headline numbers of this PR, persisted as `BENCH_1.json` so future
/// PRs have a perf trajectory to compare against.
#[derive(Default)]
struct BenchRecord {
    compile_seq_ms: f64,
    compile_par_ms: f64,
    compile_n: usize,
    update_ns: f64,
    update_n: usize,
    qps_peek_with: f64,
    qps_update_restore: f64,
    qps_overlay: f64,
    qps_batch: f64,
    throughput_n: usize,
}

impl BenchRecord {
    fn write(&self, path: &str) {
        let ratio = |num: f64| {
            if self.qps_peek_with > 0.0 {
                num / self.qps_peek_with
            } else {
                0.0
            }
        };
        let json = format!(
            "{{\n  \"bench\": 1,\n  {},\n  \"e5_compile\": {{\"n\": {}, \"sequential_ms\": {:.3}, \"parallel_ms\": {:.3}}},\n  \"e2_update\": {{\"n\": {}, \"segtree_update_ns\": {:.1}}},\n  \"e10_throughput\": {{\"n\": {}, \"peek_with_qps\": {:.0}, \"update_restore_qps\": {:.0}, \"overlay_qps\": {:.0}, \"batch_qps\": {:.0}, \"overlay_speedup\": {:.2}, \"batch_speedup\": {:.2}}}\n}}\n",
            hardware_json(),
            self.compile_n,
            self.compile_seq_ms,
            self.compile_par_ms,
            self.update_n,
            self.update_ns,
            self.throughput_n,
            self.qps_peek_with,
            self.qps_update_restore,
            self.qps_overlay,
            self.qps_batch,
            ratio(self.qps_overlay),
            ratio(self.qps_batch),
        );
        match std::fs::write(path, &json) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

fn time<F: FnMut()>(mut f: F) -> Duration {
    let t0 = Instant::now();
    f();
    t0.elapsed()
}

fn random_matrix(k: usize, n: usize, seed: u64) -> ColMatrix<Nat> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut m = ColMatrix::new(k);
    for _ in 0..n {
        let col: Vec<Nat> = (0..k).map(|_| Nat(rng.gen_range(0..100))).collect();
        m.push_col(&col);
    }
    m
}

/// E1 — permanent evaluation: streaming O_k(n) vs naive O(n^k).
fn e1_perm_eval() {
    println!("## E1  permanent evaluation (§4): streaming is linear, naive is n^k");
    println!("k=3 | n | streaming | naive | speedup");
    for &n in &[8usize, 16, 32, 64, 128] {
        let m = random_matrix(3, n, n as u64);
        let mut out = Nat(0);
        let ts = time(|| {
            for _ in 0..10 {
                out = perm_streaming(&m);
            }
        }) / 10;
        let mut out2 = Nat(0);
        let tn = time(|| out2 = perm_naive(&m));
        assert_eq!(out, out2);
        println!(
            "    | {n:>4} | {ts:>12?} | {tn:>12?} | {:>8.1}×",
            tn.as_secs_f64() / ts.as_secs_f64()
        );
    }
    // linearity of streaming at larger n
    println!("streaming only (k=3): n vs time/n (flat ⇒ linear)");
    for &n in &[1 << 12, 1 << 14, 1 << 16] {
        let m = random_matrix(3, n, n as u64);
        let t = time(|| {
            let _ = perm_streaming(&m);
        });
        println!(
            "    n={n:>7}: {t:>10?}  ({:.2} ns/col)",
            t.as_nanos() as f64 / n as f64
        );
    }
    println!();
}

/// E2–E4 — permanent update costs: log (general) vs O(1) (ring, finite).
fn e2_e4_perm_updates(record: &mut BenchRecord) {
    println!("## E2–E4  permanent updates: segment tree O(log n) vs ring/finite O(1)");
    println!("k=3 | n | segtree(update) | ring(update+read) | finite-B(update+read)");
    for &n in &[1 << 10, 1 << 13, 1 << 16] {
        let m = random_matrix(3, n, 3);
        let mut seg = SegTreePerm::build(m.clone());
        let int_rows: Vec<Vec<Int>> = (0..3)
            .map(|r| (0..n).map(|c| Int(m.get(r, c).0 as i64)).collect())
            .collect();
        let mut ring = RingPerm::build(ColMatrix::from_rows(&int_rows));
        let bool_rows: Vec<Vec<Bool>> = (0..3)
            .map(|r| {
                (0..n)
                    .map(|c| Bool(m.get(r, c).0.is_multiple_of(2)))
                    .collect()
            })
            .collect();
        let mut fin = FinitePerm::build(ColMatrix::from_rows(&bool_rows));
        let mut rng = SmallRng::seed_from_u64(7);
        let reps = 2000;
        let t_seg = time(|| {
            for _ in 0..reps {
                seg.update(
                    rng.gen_range(0..3),
                    rng.gen_range(0..n),
                    Nat(rng.gen_range(0..100)),
                );
            }
        }) / reps;
        let t_ring = time(|| {
            for _ in 0..reps {
                ring.update(
                    rng.gen_range(0..3),
                    rng.gen_range(0..n),
                    Int(rng.gen_range(0..100)),
                );
                std::hint::black_box(ring.total());
            }
        }) / reps;
        let t_fin = time(|| {
            for _ in 0..reps {
                fin.update(
                    rng.gen_range(0..3),
                    rng.gen_range(0..n),
                    Bool(rng.gen_bool(0.5)),
                );
                std::hint::black_box(fin.total());
            }
        }) / reps;
        println!("    | {n:>7} | {t_seg:>12?} | {t_ring:>12?} | {t_fin:>12?}");
        record.update_ns = t_seg.as_nanos() as f64;
        record.update_n = n;
    }
    println!("  (segtree column should grow ~log n; ring/finite stay flat — Cor. 13/17/20)\n");
}

/// E5 — Theorem 6: compile time ~linear, circuit structure bounded;
/// sequential vs parallel (byte-identical output) on multi-core.
fn e5_compile_scaling(record: &mut BenchRecord) {
    println!("## E5  Theorem 6 compilation: time, size, structural bounds");
    println!("triangle-cost query on G(n,2n) | n | seq | par | speedup | gates/n | depth | perm-rows | colors | fdepth");
    let seq_opts = CompileOptions {
        threads: 1,
        ..Default::default()
    };
    let par_opts = CompileOptions::default(); // threads = 0: one per core
    for &n in &[1000usize, 2000, 4000, 8000] {
        let wl = sparse_random(n, 5);
        let (x, y, z) = (Var(0), Var(1), Var(2));
        let phi = Formula::Rel(wl.e, vec![x, y])
            .and(Formula::Rel(wl.e, vec![y, z]))
            .and(Formula::Rel(wl.e, vec![z, x]));
        let expr: Expr<MinPlus> = Expr::Mul(vec![
            Expr::Bracket(phi),
            Expr::Weight(wl.c, vec![x, y]),
            Expr::Weight(wl.c, vec![y, z]),
            Expr::Weight(wl.c, vec![z, x]),
        ])
        .sum_over([x, y, z]);
        let nf = normalize(&expr).unwrap();
        let t0 = Instant::now();
        let compiled = compile(&wl.a, &nf, &seq_opts).unwrap();
        let t_seq = t0.elapsed();
        let t0 = Instant::now();
        let compiled_par = compile(&wl.a, &nf, &par_opts).unwrap();
        let t_par = t0.elapsed();
        assert_eq!(
            *compiled.circuit, *compiled_par.circuit,
            "parallel compile must be byte-identical"
        );
        let st = compiled.report.stats;
        println!(
            "    | {n:>5} | {t_seq:>9?} | {t_par:>9?} | {:>6.2}× | {:>7.1} | {:>5} | {:>9} | {:>6} | {:>6}",
            t_seq.as_secs_f64() / t_par.as_secs_f64(),
            st.num_gates as f64 / n as f64,
            st.depth,
            st.max_perm_rows,
            compiled.report.num_colors,
            compiled.report.max_forest_depth,
        );
        record.compile_seq_ms = t_seq.as_secs_f64() * 1e3;
        record.compile_par_ms = t_par.as_secs_f64() * 1e3;
        record.compile_n = n;
    }
    println!("  (gates/n and depth stay bounded; time grows ~linearly with a depth-dependent constant)\n");
}

/// E6 — Theorem 8: query/update latency vs naive re-evaluation.
fn e6_eval_query_update() {
    println!("## E6  Theorem 8 dynamic evaluation (min-cost neighbor sum)");
    println!(
        "f(x) = Σ_y [E(x,y)]·c(x,y)+w(y) in (min,+) | n | build | query | update | naive-scan"
    );
    for &n in &[2000usize, 8000, 32000] {
        let wl = sparse_random(n, 9);
        let (x, y) = (Var(0), Var(1));
        let expr: Expr<MinPlus> = Expr::Mul(vec![
            Expr::Bracket(Formula::Rel(wl.e, vec![x, y])),
            Expr::Weight(wl.c, vec![x, y]),
            Expr::Weight(wl.w, vec![y]),
        ])
        .sum_over([y]);
        let weights = fill_weights(
            &wl,
            3,
            |r| MinPlus(r.gen_range(1..50)),
            |r| MinPlus(r.gen_range(1..50)),
        );
        let nf = normalize(&expr).unwrap();
        let t0 = Instant::now();
        let compiled = compile(&wl.a, &nf, &CompileOptions::default()).unwrap();
        let mut engine: GeneralEngine<MinPlus> = GeneralEngine::new(compiled, &weights);
        let build = t0.elapsed();
        let mut rng = SmallRng::seed_from_u64(1);
        let reps = 2000u32;
        let tq = time(|| {
            for _ in 0..reps {
                std::hint::black_box(engine.query(&[rng.gen_range(0..n as u32)]));
            }
        }) / reps;
        let tu = time(|| {
            for _ in 0..reps {
                engine.set_weight(
                    wl.w,
                    &[rng.gen_range(0..n as u32)],
                    MinPlus(rng.gen_range(1..50)),
                );
            }
        }) / reps;
        // naive: re-scan the neighbor list per query (the "no index" baseline)
        let tn = time(|| {
            for _ in 0..reps {
                let v = rng.gen_range(0..n as u32);
                let mut best = MinPlus::INF;
                for &u in wl.graph.neighbors(v) {
                    let c = weights.get(wl.c, &[v, u]);
                    let w = weights.get(wl.w, &[u]);
                    best = best.add(&c.mul(&w));
                }
                std::hint::black_box(best);
            }
        }) / reps;
        println!("    | {n:>6} | {build:>9?} | {tq:>9?} | {tu:>9?} | {tn:>9?}");
    }
    println!("  (query/update ~O(log n): flat-ish; naive per-query scan is cheap here but cannot\n   maintain *global* aggregates — see E6b)\n");

    println!("## E6b  global aggregate under updates: engine O(log n) vs naive O(m) rescan");
    println!("total min-cost triangle | n | engine update+read | full recompute");
    for &n in &[1000usize, 4000] {
        let wl = sparse_random(n, 11);
        let (x, y, z) = (Var(0), Var(1), Var(2));
        let phi = Formula::Rel(wl.e, vec![x, y])
            .and(Formula::Rel(wl.e, vec![y, z]))
            .and(Formula::Rel(wl.e, vec![z, x]));
        let expr: Expr<MinPlus> = Expr::Mul(vec![
            Expr::Bracket(phi),
            Expr::Weight(wl.c, vec![x, y]),
            Expr::Weight(wl.c, vec![y, z]),
            Expr::Weight(wl.c, vec![z, x]),
        ])
        .sum_over([x, y, z]);
        let weights = fill_weights(&wl, 5, |_| MinPlus(0), |r| MinPlus(r.gen_range(1..100)));
        let nf = normalize(&expr).unwrap();
        let compiled = compile(&wl.a, &nf, &CompileOptions::default()).unwrap();
        let mut engine: GeneralEngine<MinPlus> = GeneralEngine::new(compiled.clone(), &weights);
        let edges: Vec<_> = wl.a.relation(wl.e).iter().cloned().collect();
        let mut rng = SmallRng::seed_from_u64(2);
        let reps = 500u32;
        let tu = time(|| {
            for _ in 0..reps {
                let t = edges[rng.gen_range(0..edges.len())];
                engine.set_weight(wl.c, t.as_slice(), MinPlus(rng.gen_range(1..100)));
                std::hint::black_box(engine.value());
            }
        }) / reps;
        // naive: re-evaluate the whole circuit from scratch per update
        let slots: Vec<MinPlus> = compiled
            .slots
            .iter()
            .map(|(_, k)| match k {
                agq_core::SlotKey::Weight(w, t) => weights.get(w, t.as_slice()),
                _ => MinPlus::INF,
            })
            .collect();
        let tr = time(|| {
            for _ in 0..20 {
                std::hint::black_box(compiled.circuit.eval(&slots, &compiled.lits));
            }
        }) / 20;
        println!("    | {n:>5} | {tu:>12?} | {tr:>12?}");
    }
    println!();
}

/// E7 — Example 9: a PageRank round through the engine.
fn e7_pagerank() {
    println!("## E7  Example 9: PageRank round (f64 ring, O(1) query/update)");
    use agq_semiring::F64;
    for &n in &[5000usize, 20000] {
        let wl = sparse_random(n, 13);
        let (x, y) = (Var(0), Var(1));
        let expr: Expr<F64> = Expr::Mul(vec![
            Expr::Bracket(Formula::Rel(wl.e, vec![y, x])),
            Expr::Weight(wl.w, vec![y]),
        ])
        .sum_over([y]);
        let weights = fill_weights(&wl, 1, |_| F64(1.0 / n as f64), |_| F64(0.0));
        let nf = normalize(&expr).unwrap();
        let t0 = Instant::now();
        let compiled = compile(&wl.a, &nf, &CompileOptions::default()).unwrap();
        let mut engine: RingEngine<F64> = RingEngine::new(compiled, &weights);
        let build = t0.elapsed();
        let t0 = Instant::now();
        for v in 0..n as u32 {
            let s = engine.query(&[v]).0;
            engine.set_weight(wl.w, &[v], F64(0.15 / n as f64 + 0.85 * s));
        }
        let round = t0.elapsed();
        println!(
            "    n={n:>6}: build {build:>10?}, one full round {round:>10?} ({:.0} ns/node)",
            round.as_nanos() as f64 / n as f64
        );
    }
    println!();
}

/// E8 — Theorem 22: provenance enumeration delay.
fn e8_provenance_delay() {
    println!("## E8  Theorem 22 provenance enumerators: constant access time");
    use agq_enumerate::ProvenanceIndex;
    use agq_semiring::Gen;
    for &n in &[1000usize, 4000] {
        let wl = sparse_random(n, 17);
        let (x, y, z) = (Var(0), Var(1), Var(2));
        let expr: Expr<Nat> = Expr::Mul(vec![
            Expr::Bracket(
                Formula::Rel(wl.e, vec![x, y])
                    .and(Formula::Rel(wl.e, vec![y, z]))
                    .and(Formula::Rel(wl.e, vec![z, x])),
            ),
            Expr::Weight(wl.c, vec![x, y]),
        ])
        .sum_over([x, y, z]);
        let t0 = Instant::now();
        let ix = ProvenanceIndex::build(&wl.a, &expr, &CompileOptions::default(), |_, t| {
            vec![vec![Gen(((t[0] as u64) << 32) | t[1] as u64)]]
        })
        .unwrap();
        let build = t0.elapsed();
        let mut it = ix.enumerate();
        let mut count = 0u64;
        let mut max_delay = Duration::ZERO;
        loop {
            let t = Instant::now();
            let step = it.next();
            max_delay = max_delay.max(t.elapsed());
            if step.is_none() {
                break;
            }
            count += 1;
        }
        println!("    n={n:>5}: build {build:>10?}, {count} monomials, max delay {max_delay:?}");
    }
    println!();
}

/// E9 — Theorem 24: enumeration delay vs n; materialization baseline.
fn e9_enum_delay() {
    println!("## E9  Theorem 24 answer enumeration: delay independent of n");
    println!("2-path query | n | build | answers | max delay | first-answer latency");
    for &n in &[1000usize, 2000, 4000] {
        let wl = sparse_random(n, 7);
        let (x, y, z) = (Var(0), Var(1), Var(2));
        let phi = Formula::Rel(wl.e, vec![x, y])
            .and(Formula::Rel(wl.e, vec![y, z]))
            .and(Formula::neq(x, z));
        let t0 = Instant::now();
        let ix = AnswerIndex::build(&wl.a, &phi, &CompileOptions::default()).unwrap();
        let build = t0.elapsed();
        let t0 = Instant::now();
        let mut it = ix.iter();
        let first = it.next();
        let first_latency = t0.elapsed();
        assert!(first.is_some());
        let mut count = 1u64;
        let mut max_delay = Duration::ZERO;
        loop {
            let t = Instant::now();
            let step = it.next();
            max_delay = max_delay.max(t.elapsed());
            if step.is_none() {
                break;
            }
            count += 1;
        }
        println!(
            "    | {n:>5} | {build:>10?} | {count:>7} | {max_delay:>10?} | {first_latency:>10?}"
        );
    }
    println!(
        "  (max delay stays flat as n grows; the baseline must materialize all answers first)\n"
    );
}

/// E9b — dynamic maintenance cost of the answer index.
fn e9b_enum_dynamic() {
    println!("## E9b  Theorem 24 dynamic updates: O(1) maintenance");
    for &n in &[1000usize, 4000] {
        let wl = sparse_random(n, 23);
        let (x, y) = (Var(0), Var(1));
        let phi = Formula::Rel(wl.e, vec![x, y]);
        let mut ix = AnswerIndex::build_dynamic(&wl.a, &phi, &CompileOptions::default()).unwrap();
        let edges: Vec<[u32; 2]> =
            wl.a.relation(wl.e)
                .iter()
                .map(|t| [t.as_slice()[0], t.as_slice()[1]])
                .collect();
        let mut rng = SmallRng::seed_from_u64(3);
        let reps = 5000u32;
        let t = time(|| {
            for _ in 0..reps {
                let t = edges[rng.gen_range(0..edges.len())];
                ix.set_tuple(wl.e, &t, rng.gen_bool(0.5)).unwrap();
            }
        }) / reps;
        println!("    n={n:>5}: {t:?} per tuple toggle (flat across n ⇒ O(1))");
    }
    println!();
}

/// E10 — Theorem 26: nested query evaluation.
fn e10_nested() {
    println!("## E10  Theorem 26 FOG[C]: max average-neighbor-weight");
    use agq_nested::{
        Connective, MultiWeights, NestedEvaluator, NestedFormula, SemiringTag, Value,
    };
    for &n in &[1000usize, 4000] {
        // needs a universe guard
        let g = generators::gnm(n, 2 * n, 31);
        let mut sig = agq_structure::Signature::new();
        let e = sig.add_relation("E", 2);
        let u = sig.add_relation("U", 1);
        let w = sig.add_weight("w", 1);
        let mut a = agq_structure::Structure::new(std::sync::Arc::new(sig), n);
        for v in 0..n as u32 {
            a.insert(u, &[v]);
        }
        for (s, t) in g.edges() {
            a.insert(e, &[s, t]);
            a.insert(e, &[t, s]);
        }
        let mut mw = MultiWeights::new();
        let mut rng = SmallRng::seed_from_u64(4);
        for v in 0..n as u32 {
            mw.set(w, &[v], Value::N(Nat(rng.gen_range(1..100))));
        }
        let (x, y, y2) = (Var(0), Var(1), Var(2));
        let num = NestedFormula::Sum(
            vec![y],
            Box::new(NestedFormula::Mul(vec![
                NestedFormula::Bracket(Box::new(NestedFormula::Rel(e, vec![x, y])), SemiringTag::N),
                NestedFormula::SAtom {
                    weight: w,
                    tag: SemiringTag::N,
                    args: vec![y],
                },
            ])),
        );
        let den = NestedFormula::Sum(
            vec![y2],
            Box::new(NestedFormula::Bracket(
                Box::new(NestedFormula::Rel(e, vec![x, y2])),
                SemiringTag::N,
            )),
        );
        let div = Connective::new(
            "avg",
            vec![SemiringTag::N, SemiringTag::N],
            SemiringTag::MaxF,
            |vals| match (&vals[0], &vals[1]) {
                (Value::N(a), Value::N(b)) if b.0 > 0 => {
                    Value::MaxF(agq_semiring::MaxF(a.0 as f64 / b.0 as f64))
                }
                _ => Value::MaxF(agq_semiring::MaxF::NEG_INF),
            },
        );
        let avg = NestedFormula::Guarded {
            guard: u,
            guard_args: vec![x],
            connective: div,
            args: vec![num, den],
        };
        let query = NestedFormula::Sum(vec![x], Box::new(avg));
        let t0 = Instant::now();
        let ev = NestedEvaluator::build(&a, &mw, &query, &CompileOptions::default()).unwrap();
        let t = t0.elapsed();
        println!(
            "    n={n:>5}: evaluated in {t:>10?}, max avg = {}",
            ev.value()
        );
    }
    println!();
}

/// E11 — Example 25: local-search rounds at O(1) each.
fn e11_local_search() {
    println!("## E11  Example 25: local-search independent set via dynamic index");
    for &(w, h) in &[(40usize, 40usize), (80, 80)] {
        let g = generators::planar_like(w, h, 3);
        let wl = workload_from(g);
        let n = wl.a.domain_size();
        let (x, y) = (Var(0), Var(1));
        let mut sig = (**wl.a.signature()).clone();
        let s = sig.add_relation("S", 1);
        let mut a = agq_structure::Structure::new(std::sync::Arc::new(sig), n);
        for r in wl.a.signature().relation_ids() {
            for t in wl.a.relation(r).iter() {
                a.insert(r, t.as_slice());
            }
        }
        let phi = Formula::Rel(wl.e, vec![x, y]).and(Formula::Rel(s, vec![y]));
        let t0 = Instant::now();
        let mut ix = AnswerIndex::build_dynamic(&a, &phi, &CompileOptions::default()).unwrap();
        let build = t0.elapsed();
        let t0 = Instant::now();
        let mut in_s = vec![false; n];
        let mut blocked = vec![0u32; n];
        let mut size = 0;
        for v in 0..n as u32 {
            if !in_s[v as usize] && blocked[v as usize] == 0 {
                in_s[v as usize] = true;
                size += 1;
                ix.set_tuple(s, &[v], true).unwrap();
                for &u2 in wl.graph.neighbors(v) {
                    blocked[u2 as usize] += 1;
                }
            }
        }
        let search = t0.elapsed();
        println!(
            "    {w}×{h} planar-like (n={n}): build {build:?}, search {search:?}, |S|={size} ({:.0} ns/round)",
            search.as_nanos() as f64 / size as f64
        );
    }
    println!();
}

/// E13 — point-query throughput: the zero-restore overlay/batch path vs
/// the seed's `peek_with` update/restore path (E10_throughput in the
/// criterion suite; acceptance: ≥2× queries/sec on the n=16k workload).
///
/// The baseline is the preserved seed evaluator
/// ([`agq_bench::legacy::LegacyEngine`]) — per-gate parent `Vec`s, cloned
/// slot lists, allocating segment-tree updates, and `2|x̄|` full
/// update/restore cycles per query — exactly the "current peek_with
/// path" this PR replaces. The in-tree update/restore path
/// (`query_via_updates`, already sped up by the flat CSR layout and the
/// in-place segment tree) is reported alongside for honesty.
fn e13_throughput(record: &mut BenchRecord) {
    use agq_bench::legacy::LegacyEngine;
    println!("## E13  point-query throughput (n=16k E6 workload, MinPlus)");
    let n = 16_000usize;
    let wl = sparse_random(n, 9);
    let (x, y) = (Var(0), Var(1));
    let expr: Expr<MinPlus> = Expr::Mul(vec![
        Expr::Bracket(Formula::Rel(wl.e, vec![x, y])),
        Expr::Weight(wl.c, vec![x, y]),
        Expr::Weight(wl.w, vec![y]),
    ])
    .sum_over([y]);
    let weights = fill_weights(
        &wl,
        3,
        |r| MinPlus(r.gen_range(1..50)),
        |r| MinPlus(r.gen_range(1..50)),
    );
    let nf = normalize(&expr).unwrap();
    let compiled = compile(&wl.a, &nf, &CompileOptions::default()).unwrap();
    let mut legacy: LegacyEngine<MinPlus> = LegacyEngine::new(compiled.clone(), &weights);
    // A/B the per-slot cone memoization: an engine over a cone-less plan
    // takes the discovery-peek path (heap + hash-map per query), while
    // the default engine sweeps the memoized cones.
    let compiled_nocones = std::sync::Arc::new(compiled.clone());
    let mut engine_disc: GeneralEngine<MinPlus> = GeneralEngine::from_parts(
        compiled_nocones.clone(),
        std::sync::Arc::new(agq_circuit::EvalPlan::new(compiled_nocones.circuit.clone())),
        &weights,
    );
    let mut engine: GeneralEngine<MinPlus> = GeneralEngine::new(compiled, &weights);

    let mut rng = SmallRng::seed_from_u64(1);
    let points: Vec<[u32; 1]> = (0..4096).map(|_| [rng.gen_range(0..n as u32)]).collect();
    let tuples: Vec<&[u32]> = points.iter().map(|p| p.as_slice()).collect();

    // correctness guard: all paths agree on this workload
    for p in points.iter().take(64) {
        let a = legacy.query(p);
        let b = engine.query(p);
        let c = engine.query_via_updates(p);
        let d = engine_disc.query(p);
        assert_eq!(a, b, "memoized-cone overlay must match the seed path");
        assert_eq!(a, c, "update/restore must match the seed path");
        assert_eq!(a, d, "discovery overlay must match the seed path");
    }

    let reps = points.len() as u32;
    let t_legacy = time(|| {
        for p in &points {
            std::hint::black_box(legacy.query(p));
        }
    });
    let t_classic = time(|| {
        for p in &points {
            std::hint::black_box(engine.query_via_updates(p));
        }
    });
    let t_disc = time(|| {
        for p in &points {
            std::hint::black_box(engine_disc.query(p));
        }
    });
    let t_overlay = time(|| {
        for p in &points {
            std::hint::black_box(engine.query(p));
        }
    });
    let t_batch = time(|| {
        std::hint::black_box(engine.query_batch(&tuples));
    });
    let qps = |t: Duration| reps as f64 / t.as_secs_f64();
    let (q_legacy, q_classic, q_overlay, q_batch) =
        (qps(t_legacy), qps(t_classic), qps(t_overlay), qps(t_batch));
    println!(
        "    seed peek_with baseline:  {q_legacy:>10.0} q/s ({:?}/query)",
        t_legacy / reps
    );
    println!(
        "    update/restore (flat IR): {q_classic:>10.0} q/s ({:?}/query)",
        t_classic / reps
    );
    println!(
        "    overlay (discovery):      {:>10.0} q/s ({:?}/query)",
        qps(t_disc),
        t_disc / reps
    );
    println!(
        "    overlay (memoized cones): {q_overlay:>10.0} q/s ({:?}/query)",
        t_overlay / reps
    );
    println!(
        "    query_batch:              {q_batch:>10.0} q/s ({:?}/query)",
        t_batch / reps
    );
    println!(
        "    speedup (batch vs seed peek_with): {:.2}×\n",
        q_batch / q_legacy
    );
    record.qps_peek_with = q_legacy;
    record.qps_update_restore = q_classic;
    record.qps_overlay = q_overlay;
    record.qps_batch = q_batch;
    record.throughput_n = n;
}

/// E12 — ablation: how coloring quality drives the constants.
fn e12_ablation_coloring() {
    println!("## E12  ablation: per-class structure constants (same query, different classes)");
    println!("edge-count query | class | colors | fdepth | subsets | gates/n | compile");
    let n = 4000;
    let classes: Vec<(&str, agq_graph::Graph)> = vec![
        ("forest", generators::random_forest(n, 3)),
        ("grid", generators::grid(63, 63)),
        ("planar-like", generators::planar_like(63, 63, 4)),
        ("G(n,2n)", generators::gnm(n, 2 * n, 5)),
        ("bounded-deg-4", generators::bounded_degree(n, 4, 5)),
    ];
    for (name, g) in classes {
        let wl = workload_from(g);
        let nn = wl.a.domain_size();
        let (x, y, z) = (Var(0), Var(1), Var(2));
        let phi = Formula::Rel(wl.e, vec![x, y]).and(Formula::Rel(wl.e, vec![y, z]));
        let expr: Expr<Nat> = Expr::Bracket(phi).sum_over([x, y, z]);
        let nf = normalize(&expr).unwrap();
        let t0 = Instant::now();
        let compiled = compile(&wl.a, &nf, &CompileOptions::default()).unwrap();
        let t = t0.elapsed();
        println!(
            "    | {name:>13} | {:>6} | {:>6} | {:>7} | {:>7.1} | {t:>9?}",
            compiled.report.num_colors,
            compiled.report.max_forest_depth,
            compiled.report.num_subsets,
            compiled.report.stats.num_gates as f64 / nn as f64,
        );
    }
    println!();
}

/// Headline numbers of PR 9 (agq-persist: plan serialization, state
/// snapshots, checksummed WAL), persisted as `BENCH_7.json`.
#[derive(Default)]
struct Bench7Record {
    n: usize,
    answers: u64,
    compile_ms: f64,
    plan_bytes: u64,
    snapshot_bytes: u64,
    save_ms: f64,
    load_ms: f64,
    load_speedup: f64,
    wal_batches: usize,
    wal_updates: usize,
    wal_bytes: u64,
    recover_ms: f64,
    wal_replay_ups: f64,
}

impl Bench7Record {
    fn write(&self, path: &str) {
        let json = format!(
            "{{\n  \"bench\": 7,\n  {},\n  \"e18_persist_restart\": {{\"n\": {}, \"answers\": {},\n    \"compile_ms\": {:.1},\n    \"artifacts\": {{\"plan_bytes\": {}, \"snapshot_bytes\": {}, \"save_ms\": {:.1}}},\n    \"plan_load\": {{\"load_ms\": {:.1}, \"speedup_vs_compile\": {:.1}}},\n    \"wal\": {{\"batches\": {}, \"updates\": {}, \"bytes\": {}, \"recover_ms\": {:.1}, \"replay_updates_per_sec\": {:.0}}}}}\n}}\n",
            hardware_json(),
            self.n,
            self.answers,
            self.compile_ms,
            self.plan_bytes,
            self.snapshot_bytes,
            self.save_ms,
            self.load_ms,
            self.load_speedup,
            self.wal_batches,
            self.wal_updates,
            self.wal_bytes,
            self.recover_ms,
            self.wal_replay_ups,
        );
        match std::fs::write(path, &json) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

/// E18 — PR 9 headline: persistence round-trip on the E9 workload.
/// Four measurements:
///
/// * **compile vs load** — a cold `build_dynamic` against decoding the
///   saved `.agqplan` + `.agqsnap` pair (linear decode + linear plan
///   rebuild; no tree-decomposition, no circuit construction);
/// * **artifact sizes** — bytes on disk for the plan and the snapshot,
///   and the wall time to write both under the snapshot locks;
/// * **WAL journal + recovery** — 64 batches of 16 edge flips appended
///   through the checksummed log, then a crash-restart:
///   plan + snapshot load, tail scan, and committed-batch replay;
/// * **replay throughput** — updates per second through the recovery
///   replay path alone (recover time minus a separately-timed load).
fn e18_persist_restart(record: &mut Bench7Record) {
    use agq_core::TupleUpdate;
    use agq_enumerate::EnumQueryEngine;
    use agq_persist::{attach_file_wal, load_engine, recover_engine, save_engine};
    use agq_semiring::F64;

    type Engine = EnumQueryEngine<F64, SegTreePerm<F64>>;

    println!("## E18  persistence: plan/snapshot round-trip + WAL recovery on E9");
    let n = 16_000usize;
    record.n = n;
    let g = generators::gnm(n, 2 * n, 7);
    let mut sig = agq_structure::Signature::new();
    let e = sig.add_relation("E", 2);
    let mut a = agq_structure::Structure::new(std::sync::Arc::new(sig), n);
    for (u, v) in g.edges() {
        a.insert(e, &[u, v]);
        a.insert(e, &[v, u]);
    }
    let edges: Vec<Vec<u32>> = a
        .relation(e)
        .iter()
        .map(|t| t.as_slice().to_vec())
        .collect();
    let a = std::sync::Arc::new(a);
    let (x, y, z) = (Var(0), Var(1), Var(2));
    let phi = Formula::Rel(e, vec![x, y])
        .and(Formula::Rel(e, vec![y, z]))
        .and(Formula::neq(x, z));
    let opts = CompileOptions::default();

    let t0 = Instant::now();
    let mut live = Engine::build_dynamic(&a, &phi, &opts).unwrap();
    record.compile_ms = t0.elapsed().as_secs_f64() * 1e3;
    record.answers = live.count();
    println!(
        "    compile: {:.1} ms, {} answers",
        record.compile_ms, record.answers
    );

    let dir = std::env::temp_dir().join(format!("agq_bench7_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (plan, snap, wal) = (
        dir.join("q.agqplan"),
        dir.join("q.agqsnap"),
        dir.join("wal.agqlog"),
    );
    let t0 = Instant::now();
    let stats = save_engine(&live, &plan, &snap).unwrap();
    record.save_ms = t0.elapsed().as_secs_f64() * 1e3;
    record.plan_bytes = stats.plan_bytes;
    record.snapshot_bytes = stats.snapshot_bytes;
    println!(
        "    save: plan {} B + snapshot {} B in {:.1} ms",
        record.plan_bytes, record.snapshot_bytes, record.save_ms
    );

    // Warm the file cache, then time the load proper.
    load_engine::<F64, SegTreePerm<F64>>(&plan, &snap).unwrap();
    let t0 = Instant::now();
    let loaded = load_engine::<F64, SegTreePerm<F64>>(&plan, &snap).unwrap();
    record.load_ms = t0.elapsed().as_secs_f64() * 1e3;
    record.load_speedup = record.compile_ms / record.load_ms;
    assert_eq!(loaded.count(), record.answers);
    println!(
        "    load: {:.1} ms ({:.1}× faster than compile)",
        record.load_ms, record.load_speedup
    );

    // Journal 64 batches of 16 deterministic edge flips, then recover.
    attach_file_wal(&mut live, &wal).unwrap();
    let (batches, per_batch) = (64usize, 16usize);
    let mut present = vec![true; edges.len()];
    let mut s = 0x9e3779b97f4a7c15u64;
    for _ in 0..batches {
        let batch: Vec<TupleUpdate> = (0..per_batch)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let ei = (s % edges.len() as u64) as usize;
                present[ei] = !present[ei];
                TupleUpdate {
                    rel: e,
                    tuple: edges[ei].clone(),
                    present: present[ei],
                }
            })
            .collect();
        live.apply_batch(&batch).unwrap();
    }
    live.detach_wal();
    record.wal_batches = batches;
    record.wal_updates = batches * per_batch;
    record.wal_bytes = std::fs::metadata(&wal).unwrap().len();

    let t0 = Instant::now();
    let (rec, report) = recover_engine::<F64, SegTreePerm<F64>>(&plan, &snap, &wal).unwrap();
    record.recover_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(report.batches_replayed, batches);
    assert_eq!(rec.count(), live.count());
    let replay_ms = (record.recover_ms - record.load_ms).max(1e-3);
    record.wal_replay_ups = record.wal_updates as f64 / (replay_ms / 1e3);
    println!(
        "    recover: {:.1} ms for {} batches / {} updates ({} B of WAL); \
         replay ≈ {:.0} updates/s\n",
        record.recover_ms,
        record.wal_batches,
        record.wal_updates,
        record.wal_bytes,
        record.wal_replay_ups
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Headline numbers of PR 10 (fault-tolerant serving: fail-point
/// registry, shard quarantine, WAL durability policy), persisted as
/// `BENCH_8.json`.
#[derive(Default)]
struct Bench8Record {
    calls: u64,
    point_ns: f64,
    io_point_ns: f64,
    n: usize,
    shards: usize,
    updates: usize,
    churn_ups: f64,
    hook_overhead_pct: f64,
}

impl Bench8Record {
    fn write(&self, path: &str) {
        let json = format!(
            "{{\n  \"bench\": 8,\n  {},\n  \"e19_failpoint_overhead\": {{\n    \"hooks_disabled\": {{\"calls\": {}, \"point_ns_per_call\": {:.3}, \"io_point_ns_per_call\": {:.3}}},\n    \"sharded_churn\": {{\"n\": {}, \"shards\": {}, \"updates\": {}, \"updates_per_sec\": {:.0}, \"est_hook_overhead_pct\": {:.4}}}}}\n}}\n",
            hardware_json(),
            self.calls,
            self.point_ns,
            self.io_point_ns,
            self.n,
            self.shards,
            self.updates,
            self.churn_ups,
            self.hook_overhead_pct,
        );
        match std::fs::write(path, &json) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

/// E19 — PR 10 headline: disabled fail-point hooks cost nothing on the
/// hot update path. Two measurements:
///
/// * **hook microbench** — tight-loop `fault::point` / `fault::io_point`
///   with the `failpoints` feature off (this crate never enables it, so
///   this is the production configuration): both compile to inlined
///   no-ops, and the reported ns/call is loop overhead, not hook cost;
/// * **churn throughput** — the E15 hot-key churn script through the
///   sharded engine's `apply_batch`, which crosses the `wal.append`
///   (durability policy), `shard.apply`, and `batch.worker` sites on
///   every batch. The implied overhead percentage bounds what the
///   disabled hooks could possibly add per update.
fn e19_failpoint_overhead(record: &mut Bench8Record) {
    use agq_enumerate::{GeneralShardedEngine, ShardedEngine};
    use std::hint::black_box;
    println!("## E19  fail-point overhead: disabled hooks on the hot update path");

    let calls: u64 = 1 << 26;
    let t = time(|| {
        for _ in 0..calls {
            agq_core::fault::point(black_box("shard.apply"));
        }
    });
    record.point_ns = t.as_secs_f64() * 1e9 / calls as f64;
    let t = time(|| {
        let mut ok = 0u64;
        for _ in 0..calls {
            ok += u64::from(agq_core::fault::io_point(black_box("wal.append")).is_ok());
        }
        black_box(ok);
    });
    record.io_point_ns = t.as_secs_f64() * 1e9 / calls as f64;
    record.calls = calls;
    println!(
        "    {} calls each: point {:.3} ns/call, io_point {:.3} ns/call",
        record.calls, record.point_ns, record.io_point_ns
    );

    let w = e14_world();
    let reps = 40_000usize;
    let script = flip_script(w.e, &w.edges, reps, 99, Some((4, 0.95)));
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let eng: GeneralShardedEngine<Nat> =
        ShardedEngine::build(&w.a, &w.phi, &CompileOptions::default(), cores.max(2)).unwrap();
    for u in &script {
        eng.apply_update(u).unwrap();
    }
    let t = time(|| {
        for chunk in script.chunks(64) {
            eng.apply_batch(chunk).unwrap();
        }
    });
    record.n = w.comps * w.m;
    record.shards = eng.num_shards();
    record.updates = reps;
    record.churn_ups = reps as f64 / t.as_secs_f64();
    // ≈3 hook crossings per 64-update batch (journal + apply + worker)
    let per_update_ns = 1e9 / record.churn_ups;
    record.hook_overhead_pct =
        (record.point_ns + record.io_point_ns) * (3.0 / 64.0) / per_update_ns * 100.0;
    println!(
        "    churn via {} shards: batch=64 {:.0} updates/s; \
         implied hook overhead ≤ {:.4}% per update\n",
        record.shards, record.churn_ups, record.hook_overhead_pct
    );
}
