//! The seed implementation of the dynamic evaluator and its segment-tree
//! permanents, preserved verbatim-in-spirit as the measured baseline of
//! the `E10_throughput` experiment.
//!
//! This is the "current `peek_with` path" the PR's acceptance criterion
//! refers to: per-gate parent `Vec`s, a cloned `slot_gates` list on every
//! update, per-node table allocations inside the segment tree, a cloning
//! `total()`, and free-variable point queries run as `2|x̄|` full
//! update/restore cycles. Do **not** use this outside benchmarks — the
//! production path is `agq_core::QueryEngine`.

use agq_circuit::{Circuit, GateDef};
use agq_core::{CompiledQuery, SlotKey};
use agq_perm::ColMatrix;
use agq_semiring::Semiring;
use agq_structure::{Elem, WeightedStructure};
use std::collections::BinaryHeap;
use std::sync::Arc;

/// The seed's segment-tree permanent: one `Vec` table per node, merges
/// allocate, `total()` is read through a clone at the call sites.
pub struct LegacySegTree<S> {
    k: usize,
    n: usize,
    size: usize,
    tables: Vec<Vec<S>>,
    cols: ColMatrix<S>,
}

impl<S: Semiring> LegacySegTree<S> {
    /// Build the tree over the columns of `cols`.
    pub fn build(cols: ColMatrix<S>) -> Self {
        let k = cols.rows();
        let n = cols.cols();
        let size = n.next_power_of_two().max(1);
        let empty = Self::empty_table(k);
        let tables = vec![empty; 2 * size];
        let mut tree = LegacySegTree {
            k,
            n,
            size,
            tables,
            cols,
        };
        for c in 0..n {
            tree.tables[tree.size + c] = tree.leaf_table(c);
        }
        for node in (1..tree.size).rev() {
            tree.tables[node] = tree.merge(node);
        }
        tree
    }

    /// The permanent of the full matrix (cloned, as in the seed's
    /// `PermMaint::total`).
    pub fn total(&self) -> S {
        self.tables[1][(1 << self.k) - 1].clone()
    }

    /// Overwrite entry `(row, col)` and repair the root path, allocating
    /// a fresh table per level.
    pub fn update(&mut self, row: usize, col: usize, value: S) {
        assert!(col < self.n, "column {col} out of range");
        self.cols.set(row, col, value);
        self.tables[self.size + col] = self.leaf_table(col);
        let mut node = (self.size + col) / 2;
        while node >= 1 {
            self.tables[node] = self.merge(node);
            node /= 2;
        }
    }

    fn empty_table(k: usize) -> Vec<S> {
        let mut t = vec![S::zero(); 1 << k];
        t[0] = S::one();
        t
    }

    fn leaf_table(&self, c: usize) -> Vec<S> {
        let mut t = Self::empty_table(self.k);
        if c < self.n {
            for r in 0..self.k {
                t[1 << r] = self.cols.get(r, c).clone();
            }
        }
        t
    }

    fn merge(&self, node: usize) -> Vec<S> {
        let left = &self.tables[2 * node];
        let right = &self.tables[2 * node + 1];
        let mut out = Vec::with_capacity(1 << self.k);
        for mask in 0..(1u32 << self.k) {
            let mut acc = S::zero();
            let mut sub = mask;
            loop {
                acc.add_assign(&left[sub as usize].mul(&right[(mask & !sub) as usize]));
                if sub == 0 {
                    break;
                }
                sub = (sub - 1) & mask;
            }
            out.push(acc);
        }
        out
    }
}

#[derive(Clone, Copy, Debug)]
enum ParentRef {
    Add(u32),
    Mul(u32),
    Perm { gate: u32, row: u8, col: u32 },
}

/// The seed's dynamic evaluator: per-gate parent `Vec`s, `Option`-boxed
/// perm states, and a cloned per-slot gate list on every `set_input`.
pub struct LegacyEvaluator<S: Semiring> {
    circuit: Arc<Circuit>,
    values: Vec<S>,
    parents: Vec<Vec<ParentRef>>,
    perm_states: Vec<Option<LegacySegTree<S>>>,
    slot_gates: Vec<Vec<u32>>,
    slot_values: Vec<S>,
}

impl<S: Semiring> LegacyEvaluator<S> {
    /// Build from an initial input assignment, evaluating once.
    pub fn new(circuit: Arc<Circuit>, slots: &[S], lits: &[S]) -> Self {
        assert_eq!(slots.len(), circuit.num_slots());
        assert_eq!(lits.len(), circuit.num_lits());
        let values = agq_circuit::eval_gates(&circuit, slots, lits);
        let gates = circuit.gates();
        let mut parents: Vec<Vec<ParentRef>> = vec![Vec::new(); gates.len()];
        let mut perm_states: Vec<Option<LegacySegTree<S>>> = Vec::with_capacity(gates.len());
        let mut slot_gates: Vec<Vec<u32>> = vec![Vec::new(); circuit.num_slots()];
        for (i, g) in gates.iter().enumerate() {
            let mut state = None;
            match g {
                GateDef::Input(slot) => slot_gates[*slot as usize].push(i as u32),
                GateDef::Const(_) => {}
                GateDef::Add(children) => {
                    for c in circuit.children(*children) {
                        parents[c.0 as usize].push(ParentRef::Add(i as u32));
                    }
                }
                GateDef::Mul(a, b) => {
                    parents[a.0 as usize].push(ParentRef::Mul(i as u32));
                    parents[b.0 as usize].push(ParentRef::Mul(i as u32));
                }
                GateDef::Perm { rows, cols } => {
                    let k = *rows as usize;
                    let cols = circuit.children(*cols);
                    let mut m = ColMatrix::with_capacity(k, cols.len() / k);
                    let mut buf = Vec::with_capacity(k);
                    for (ci, col) in cols.chunks_exact(k).enumerate() {
                        buf.clear();
                        buf.extend(col.iter().map(|g| values[g.0 as usize].clone()));
                        m.push_col(&buf);
                        for (r, child) in col.iter().enumerate() {
                            parents[child.0 as usize].push(ParentRef::Perm {
                                gate: i as u32,
                                row: r as u8,
                                col: ci as u32,
                            });
                        }
                    }
                    state = Some(LegacySegTree::build(m));
                }
            }
            perm_states.push(state);
        }
        LegacyEvaluator {
            circuit,
            values,
            parents,
            perm_states,
            slot_gates,
            slot_values: slots.to_vec(),
        }
    }

    /// Current output value.
    pub fn output(&self) -> &S {
        &self.values[self.circuit.output().0 as usize]
    }

    /// Set input `slot` to `value` and repair all affected gates
    /// (cloning the slot's gate list, as the seed did).
    pub fn set_input(&mut self, slot: u32, value: S) {
        if self.slot_values[slot as usize] == value {
            return;
        }
        self.slot_values[slot as usize] = value.clone();
        let mut dirty: BinaryHeap<std::cmp::Reverse<u32>> = BinaryHeap::new();
        let input_gates = self.slot_gates[slot as usize].clone();
        for g in input_gates {
            if self.values[g as usize] != value {
                self.values[g as usize] = value.clone();
                self.mark_parents(g, &mut dirty);
            }
        }
        while let Some(std::cmp::Reverse(g)) = dirty.pop() {
            if dirty.peek() == Some(&std::cmp::Reverse(g)) {
                continue;
            }
            let new = self.recompute(g);
            if self.values[g as usize] != new {
                self.values[g as usize] = new;
                self.mark_parents(g, &mut dirty);
            }
        }
    }

    /// The seed's query trick: `2|x̄|` full update/restore cycles.
    pub fn peek_with(&mut self, patches: &[(u32, S)]) -> S {
        let saved: Vec<(u32, S)> = patches
            .iter()
            .map(|(s, _)| (*s, self.slot_values[*s as usize].clone()))
            .collect();
        for (s, v) in patches {
            self.set_input(*s, v.clone());
        }
        let out = self.output().clone();
        for (s, v) in saved.into_iter().rev() {
            self.set_input(s, v);
        }
        out
    }

    fn mark_parents(&mut self, g: u32, dirty: &mut BinaryHeap<std::cmp::Reverse<u32>>) {
        let parents = std::mem::take(&mut self.parents[g as usize]);
        for p in &parents {
            match *p {
                ParentRef::Add(pg) | ParentRef::Mul(pg) => {
                    dirty.push(std::cmp::Reverse(pg));
                }
                ParentRef::Perm { gate, row, col } => {
                    let v = self.values[g as usize].clone();
                    self.perm_states[gate as usize]
                        .as_mut()
                        .expect("perm state present")
                        .update(row as usize, col as usize, v);
                    dirty.push(std::cmp::Reverse(gate));
                }
            }
        }
        self.parents[g as usize] = parents;
    }

    fn recompute(&self, g: u32) -> S {
        match &self.circuit.gates()[g as usize] {
            GateDef::Input(_) | GateDef::Const(_) => self.values[g as usize].clone(),
            GateDef::Add(children) => {
                let mut acc = S::zero();
                for c in self.circuit.children(*children) {
                    acc.add_assign(&self.values[c.0 as usize]);
                }
                acc
            }
            GateDef::Mul(a, b) => self.values[a.0 as usize].mul(&self.values[b.0 as usize]),
            GateDef::Perm { .. } => self.perm_states[g as usize]
                .as_ref()
                .expect("perm state present")
                .total(),
        }
    }
}

/// The seed engine: a [`LegacyEvaluator`] bound to a compiled query, with
/// the seed's free-variable point-query path.
pub struct LegacyEngine<S: Semiring> {
    compiled: CompiledQuery<S>,
    eval: LegacyEvaluator<S>,
}

impl<S: Semiring> LegacyEngine<S> {
    /// Bind a compiled query to concrete weights (static-atom mode).
    pub fn new(compiled: CompiledQuery<S>, weights: &WeightedStructure<S>) -> Self {
        let a = weights.structure();
        let slot_values: Vec<S> = compiled
            .slots
            .iter()
            .map(|(_, key)| match key {
                SlotKey::Weight(w, t) => weights.get(w, t.as_slice()),
                SlotKey::FreeVar(..) => S::zero(),
                SlotKey::AtomPos(r, t) => {
                    if a.holds(r, t.as_slice()) {
                        S::one()
                    } else {
                        S::zero()
                    }
                }
                SlotKey::AtomNeg(r, t) => {
                    if a.holds(r, t.as_slice()) {
                        S::zero()
                    } else {
                        S::one()
                    }
                }
            })
            .collect();
        let eval = LegacyEvaluator::new(compiled.circuit.clone(), &slot_values, &compiled.lits);
        LegacyEngine { compiled, eval }
    }

    /// Value at a free-variable tuple via the seed's `2|x̄|`
    /// update/restore cycles.
    pub fn query(&mut self, tuple: &[Elem]) -> S {
        assert_eq!(
            tuple.len(),
            self.compiled.free_vars.len(),
            "query tuple arity mismatch"
        );
        let mut patches = Vec::with_capacity(tuple.len());
        for (i, &a) in tuple.iter().enumerate() {
            match self.compiled.slots.lookup(&SlotKey::FreeVar(i as u8, a)) {
                Some(slot) => patches.push((slot, S::one())),
                None => return S::zero(),
            }
        }
        self.eval.peek_with(&patches)
    }
}
