//! Shared workload builders for the experiment suite (system **S11**),
//! plus the preserved seed evaluator ([`legacy`]) used as the measured
//! baseline of the throughput experiments.

pub mod legacy;

use agq_graph::{generators, Graph};
use agq_semiring::Semiring;
use agq_structure::{RelId, Signature, Structure, WeightId, WeightedStructure};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A graph-shaped workload: symmetrized edge relation `E`, unary weight
/// `w`, binary weight `c`.
pub struct Workload {
    /// The structure.
    pub a: Arc<Structure>,
    /// Edge relation.
    pub e: RelId,
    /// Unary weight symbol.
    pub w: WeightId,
    /// Binary (edge) weight symbol.
    pub c: WeightId,
    /// The underlying undirected graph.
    pub graph: Graph,
}

/// Build a workload from any generator output.
pub fn workload_from(graph: Graph) -> Workload {
    let n = graph.num_vertices();
    let mut sig = Signature::new();
    let e = sig.add_relation("E", 2);
    let w = sig.add_weight("w", 1);
    let c = sig.add_weight("c", 2);
    let mut a = Structure::new(Arc::new(sig), n);
    for (u, v) in graph.edges() {
        a.insert(e, &[u, v]);
        a.insert(e, &[v, u]);
    }
    Workload {
        a: Arc::new(a),
        e,
        w,
        c,
        graph,
    }
}

/// Random sparse `G(n, 2n)` workload.
pub fn sparse_random(n: usize, seed: u64) -> Workload {
    workload_from(generators::gnm(n, 2 * n, seed))
}

/// Populate all weights with pseudo-random values produced by `f`.
pub fn fill_weights<S: Semiring>(
    wl: &Workload,
    seed: u64,
    mut unary: impl FnMut(&mut SmallRng) -> S,
    mut binary: impl FnMut(&mut SmallRng) -> S,
) -> WeightedStructure<S> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut ws = WeightedStructure::new(wl.a.clone());
    for v in 0..wl.a.domain_size() as u32 {
        ws.set(wl.w, &[v], unary(&mut rng));
    }
    let tuples: Vec<_> = wl.a.relation(wl.e).iter().cloned().collect();
    for t in tuples {
        ws.set(wl.c, t.as_slice(), binary(&mut rng));
    }
    ws
}
