//! Permanents of rectangular matrices over commutative semirings.
//!
//! System **S2** of the reproduction: Section 4 of *Aggregate Queries on
//! Sparse Databases* reduces the evaluation and maintenance of arbitrary
//! weighted queries to the purely algebraic problem of computing and
//! updating the permanent
//!
//! ```text
//! perm(M) = Σ_{f : R → C injective} Π_{r ∈ R} M[r, f(r)]
//! ```
//!
//! of a `k × n` matrix `M`, where the number of rows `k` is a query
//! constant and the number of columns `n` is data-sized. This crate
//! provides every algorithm the paper calls for:
//!
//! * [`perm_naive`] — the defining sum (the baseline; O(n^k));
//! * [`perm_streaming`] — linear time `O_k(n)` for any semiring, via a
//!   subset dynamic program (the unit-cost evaluation behind Theorem 8);
//! * [`perm_prime`] — the ordered variant `perm′` of Lemma 10 together
//!   with the divide-and-conquer identity used to prove Lemma 11;
//! * [`SegTreePerm`] — the logarithmic-update structure of
//!   Corollary 13 (general semirings; tight by Proposition 14);
//! * [`RingPerm`] — constant-time updates for rings via the
//!   inclusion–exclusion formula over set partitions (Lemma 15);
//! * [`FinitePerm`] — constant-time updates for finite semirings via
//!   column-type counting (Lemma 18);
//! * [`support`] — Boolean permanent (system of distinct representatives)
//!   tests on column-type counts, the engine behind the enumeration
//!   structure of Lemma 39.
//!
//! Row counts are limited to [`MAX_ROWS`] so that row subsets fit in a
//! `u32` mask; this mirrors the paper's standing assumption that the number
//! of rows is a constant of the query.

mod finite;
mod matrix;
mod naive;
pub mod partitions;
pub mod perm_prime;
mod ring;
mod segtree;
mod streaming;
pub mod support;

pub use finite::FinitePerm;
pub use matrix::ColMatrix;
pub use naive::perm_naive;
pub use ring::RingPerm;
pub use segtree::SegTreePerm;
pub use streaming::{perm_streaming, PrefixPerm};

/// Maximum supported number of rows `k` (row subsets are `u32` masks and
/// the dynamic programs are exponential in `k`; queries fix `k`).
pub const MAX_ROWS: usize = 8;

#[cfg(test)]
mod cross_tests {
    use super::*;
    use agq_semiring::{Int, MinPlus, Nat, Semiring};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_nat_matrix(k: usize, n: usize, seed: u64) -> ColMatrix<Nat> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut m = ColMatrix::new(k);
        for _ in 0..n {
            let col: Vec<Nat> = (0..k).map(|_| Nat(rng.gen_range(0..5))).collect();
            m.push_col(&col);
        }
        m
    }

    #[test]
    fn streaming_matches_naive_nat() {
        for k in 1..=4 {
            for n in 0..8 {
                let m = random_nat_matrix(k, n, (k * 100 + n) as u64);
                assert_eq!(perm_streaming(&m), perm_naive(&m), "k={k} n={n}");
            }
        }
    }

    #[test]
    fn streaming_matches_naive_minplus() {
        let mut rng = SmallRng::seed_from_u64(7);
        for k in 1..=3 {
            for n in 0..7 {
                let mut m = ColMatrix::new(k);
                for _ in 0..n {
                    let col: Vec<MinPlus> = (0..k).map(|_| MinPlus(rng.gen_range(0..20))).collect();
                    m.push_col(&col);
                }
                assert_eq!(perm_streaming(&m), perm_naive(&m), "k={k} n={n}");
            }
        }
    }

    #[test]
    fn empty_rows_permanent_is_one() {
        let m: ColMatrix<Nat> = ColMatrix::new(0);
        assert_eq!(perm_streaming(&m), Nat::one());
        assert_eq!(perm_naive(&m), Nat::one());
    }

    #[test]
    fn fewer_columns_than_rows_gives_zero() {
        let m = random_nat_matrix(3, 2, 1);
        assert_eq!(perm_streaming(&m), Nat::zero());
    }

    #[test]
    fn all_structures_agree_int() {
        let mut rng = SmallRng::seed_from_u64(99);
        for k in 1..=3 {
            for n in [3usize, 5, 9] {
                let mut m = ColMatrix::new(k);
                for _ in 0..n {
                    let col: Vec<Int> = (0..k).map(|_| Int(rng.gen_range(-3..4))).collect();
                    m.push_col(&col);
                }
                let expect = perm_naive(&m);
                assert_eq!(perm_streaming(&m), expect);
                let seg = SegTreePerm::build(m.clone());
                assert_eq!(*seg.total(), expect);
                let ring = RingPerm::build(m.clone());
                assert_eq!(ring.total(), expect);
            }
        }
    }
}
