//! Constant-time permanent maintenance in finite semirings (Lemma 18).

use crate::ColMatrix;
use agq_semiring::{nat_mul, FiniteSemiring};
use std::collections::HashMap;

/// Dynamic permanent of a `k × n` matrix over a *finite* semiring, with
/// `O_{k,|S|}(1)` updates — the structure behind Corollary 20.
///
/// The key observation of Lemma 18: `perm(M)` depends only on the number of
/// occurrences of each vector `t ∈ S^k` as a column of `M`. We therefore
/// maintain a multiset of column types and recompute the permanent from the
/// (constantly many) type counts by a subset dynamic program with
/// falling-factorial multiplicities:
///
/// ```text
/// g_t[R] = Σ_{R' ⊆ R} g_{t−1}[R \ R'] · P(c_t, |R'|) · Π_{r ∈ R'} t[r]
/// ```
///
/// where `P(c, j) = c(c−1)⋯(c−j+1)` counts ordered choices of distinct
/// columns of type `t` (all columns of one type contribute equal products).
pub struct FinitePerm<S: FiniteSemiring> {
    cols: ColMatrix<S>,
    counts: HashMap<Vec<S>, u64>,
}

impl<S: FiniteSemiring> FinitePerm<S> {
    /// Build in `O(n · k)` time.
    pub fn build(cols: ColMatrix<S>) -> Self {
        let mut counts: HashMap<Vec<S>, u64> = HashMap::new();
        for col in cols.iter_cols() {
            *counts.entry(col.to_vec()).or_insert(0) += 1;
        }
        FinitePerm { cols, counts }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols.cols()
    }

    /// Number of distinct column types currently present (≤ `|S|^k`).
    pub fn num_types(&self) -> usize {
        self.counts.len()
    }

    /// Overwrite entry `(row, col)`; O(k) hash work.
    pub fn update(&mut self, row: usize, col: usize, value: S) {
        let old: Vec<S> = self.cols.col(col).to_vec();
        self.cols.set(row, col, value);
        let new: Vec<S> = self.cols.col(col).to_vec();
        if old == new {
            return;
        }
        if let Some(c) = self.counts.get_mut(&old) {
            *c -= 1;
            if *c == 0 {
                self.counts.remove(&old);
            }
        }
        *self.counts.entry(new).or_insert(0) += 1;
    }

    /// The permanent, recomputed from type counts:
    /// `O(T · 3^k + T · 2^k · k)` with `T ≤ min(n, |S|^k)` — constant in
    /// `n` once every type is present.
    pub fn total(&self) -> S {
        self.total_from(&self.counts)
    }

    /// Evaluate the permanent with some entries replaced, **without
    /// mutating** the structure: the type counts are adjusted into a
    /// transient copy (`O_{k,|S|}(1)`). Later patches to the same entry
    /// win.
    pub fn peek(&self, patches: &[(usize, usize, S)]) -> S {
        if patches.is_empty() {
            return self.total();
        }
        let mut counts = self.counts.clone();
        // Patched columns, with patch order preserved per column.
        let mut touched: Vec<(usize, Vec<S>)> = Vec::new();
        for (row, col, v) in patches {
            let idx = match touched.iter().position(|(c, _)| c == col) {
                Some(i) => i,
                None => {
                    touched.push((*col, self.cols.col(*col).to_vec()));
                    touched.len() - 1
                }
            };
            touched[idx].1[*row] = v.clone();
        }
        for (col, new_col) in touched {
            let old_col = self.cols.col(col);
            if old_col == new_col.as_slice() {
                continue;
            }
            if let Some(c) = counts.get_mut(old_col) {
                *c -= 1;
                if *c == 0 {
                    counts.remove(old_col);
                }
            }
            *counts.entry(new_col).or_insert(0) += 1;
        }
        self.total_from(&counts)
    }

    fn total_from(&self, counts: &HashMap<Vec<S>, u64>) -> S {
        let k = self.cols.rows();
        let full = (1usize << k) - 1;
        let mut g = vec![S::zero(); 1 << k];
        g[0] = S::one();
        for (ty, &count) in counts {
            // Precompute Π_{r ∈ mask} ty[r] for every mask.
            let mut prod = vec![S::one(); 1 << k];
            for mask in 1..=full {
                let r = mask.trailing_zeros() as usize;
                prod[mask] = prod[mask & (mask - 1)].mul(&ty[r]);
            }
            // In-place descending-mask update (reads of strictly smaller
            // masks still see pre-type values).
            for mask in (1..=full).rev() {
                let mut acc = g[mask].clone();
                // Enumerate nonempty submasks R' of mask.
                let mut sub = mask;
                loop {
                    let j = sub.count_ones() as u64;
                    if count >= j {
                        let mut term = g[mask & !sub].mul(&prod[sub]);
                        // falling factorial P(count, j), factor by factor to
                        // avoid u64 overflow for large counts
                        for step in 0..j {
                            term = nat_mul(count - step, &term);
                        }
                        acc.add_assign(&term);
                    }
                    sub = (sub - 1) & mask;
                    if sub == 0 {
                        break;
                    }
                }
                g[mask] = acc;
            }
        }
        g[full].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perm_naive;
    use agq_semiring::{Bool, Mod};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_bool_matrix(k: usize, n: usize, seed: u64) -> ColMatrix<Bool> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut m = ColMatrix::new(k);
        for _ in 0..n {
            let col: Vec<Bool> = (0..k).map(|_| Bool(rng.gen_bool(0.5))).collect();
            m.push_col(&col);
        }
        m
    }

    #[test]
    fn matches_naive_bool() {
        for k in 1..=4 {
            for n in [2usize, 5, 9] {
                let m = random_bool_matrix(k, n, (k * 31 + n) as u64);
                assert_eq!(
                    FinitePerm::build(m.clone()).total(),
                    perm_naive(&m),
                    "k={k} n={n}"
                );
            }
        }
    }

    #[test]
    fn matches_naive_mod5() {
        let mut rng = SmallRng::seed_from_u64(5);
        for k in 1..=3 {
            let mut m = ColMatrix::new(k);
            for _ in 0..8 {
                let col: Vec<Mod> = (0..k).map(|_| Mod::new(rng.gen_range(0..5), 5)).collect();
                m.push_col(&col);
            }
            assert_eq!(FinitePerm::build(m.clone()).total(), perm_naive(&m));
        }
    }

    #[test]
    fn update_sequences_stay_correct() {
        let mut rng = SmallRng::seed_from_u64(77);
        let m = random_bool_matrix(3, 8, 3);
        let mut dynamic = FinitePerm::build(m.clone());
        let mut shadow = m;
        for _ in 0..60 {
            let r = rng.gen_range(0..3);
            let c = rng.gen_range(0..8);
            let v = Bool(rng.gen_bool(0.5));
            dynamic.update(r, c, v);
            shadow.set(r, c, v);
            assert_eq!(dynamic.total(), perm_naive(&shadow));
        }
    }

    #[test]
    fn peek_matches_naive_and_leaves_state() {
        let mut rng = SmallRng::seed_from_u64(15);
        let m = random_bool_matrix(3, 7, 6);
        let dynamic = FinitePerm::build(m.clone());
        for _ in 0..30 {
            let patches: Vec<(usize, usize, Bool)> = (0..rng.gen_range(1..4))
                .map(|_| {
                    (
                        rng.gen_range(0..3),
                        rng.gen_range(0..7),
                        Bool(rng.gen_bool(0.5)),
                    )
                })
                .collect();
            let mut shadow = m.clone();
            for (r, c, v) in &patches {
                shadow.set(*r, *c, *v);
            }
            assert_eq!(dynamic.peek(&patches), perm_naive(&shadow));
            assert_eq!(dynamic.total(), perm_naive(&m), "peek must not mutate");
        }
    }

    #[test]
    fn boolean_permanent_is_sdr_existence() {
        // A Boolean permanent is true iff a system of distinct
        // representatives exists.
        let m = ColMatrix::from_rows(&[
            vec![Bool(true), Bool(true), Bool(false)],
            vec![Bool(true), Bool(false), Bool(true)],
            vec![Bool(true), Bool(false), Bool(false)],
        ]);
        assert_eq!(FinitePerm::build(m).total(), Bool(true));
        let blocked = ColMatrix::from_rows(&[
            vec![Bool(true), Bool(false), Bool(false)],
            vec![Bool(true), Bool(false), Bool(false)],
            vec![Bool(true), Bool(false), Bool(false)],
        ]);
        assert_eq!(FinitePerm::build(blocked).total(), Bool(false));
    }

    #[test]
    fn falling_factorial_handles_large_counts() {
        // 1×n all-true Boolean matrix: permanent = true for any n.
        let mut m = ColMatrix::new(1);
        for _ in 0..1000 {
            m.push_col(&[Bool(true)]);
        }
        let p = FinitePerm::build(m);
        assert_eq!(p.num_types(), 1);
        assert_eq!(p.total(), Bool(true));
    }
}
