//! Constant-time permanent maintenance in rings (Lemma 15).

use crate::partitions::{set_partitions, Partition};
use crate::ColMatrix;
use agq_semiring::{nat_mul, Ring, Semiring};

/// Dynamic permanent of a `k × n` matrix over a ring, with `O_k(1)` updates
/// and `O_k(1)` reads — the structure behind Corollary 17.
///
/// By inclusion–exclusion over the partition lattice (the general form of
/// the `Σaᵢbⱼ = ΣaΣb − Σab` identity shown after Lemma 15),
///
/// ```text
/// perm(M) = Σ_{π ⊢ [k]} μ(π) · Π_{B ∈ π} S_B,   S_B = Σ_c Π_{r ∈ B} M[r,c],
/// ```
///
/// so it suffices to maintain the `2^k − 1` *power sums* `S_B`. An entry
/// update changes `S_B` for the masks containing the updated row by a
/// subtractable delta — this is exactly where the ring structure is needed.
pub struct RingPerm<S: Ring> {
    cols: ColMatrix<S>,
    /// `sums[mask]` = `S_mask`; index 0 unused.
    sums: Vec<S>,
    partitions: Vec<Partition>,
}

impl<S: Ring> RingPerm<S> {
    /// Build in `O(n · 2^k · k)` time.
    pub fn build(cols: ColMatrix<S>) -> Self {
        let k = cols.rows();
        let mut sums = vec![S::zero(); 1 << k];
        for col in cols.iter_cols() {
            for (mask, sum) in sums.iter_mut().enumerate().skip(1) {
                sum.add_assign(&prod_over(col, mask as u32));
            }
        }
        RingPerm {
            cols,
            sums,
            partitions: set_partitions(k),
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols.cols()
    }

    /// The entry at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> &S {
        self.cols.get(row, col)
    }

    /// Overwrite entry `(row, col)`; `O(2^k · k)` ring operations,
    /// independent of `n`.
    pub fn update(&mut self, row: usize, col: usize, value: S) {
        let old_col: Vec<S> = self.cols.col(col).to_vec();
        self.cols.set(row, col, value);
        let new_col = self.cols.col(col);
        for mask in 1u32..(1 << self.cols.rows()) {
            if mask & (1 << row) != 0 {
                let delta = prod_over(new_col, mask).sub(&prod_over(&old_col, mask));
                self.sums[mask as usize].add_assign(&delta);
            }
        }
    }

    /// The permanent; `O(Bell(k) · k)` ring operations, independent of `n`.
    pub fn total(&self) -> S {
        self.total_from(&self.sums)
    }

    /// Evaluate the permanent with some entries replaced, **without
    /// mutating** the structure: the power sums are adjusted into a
    /// transient copy (`O_k(1)`). Later patches to the same entry win.
    pub fn peek(&self, patches: &[(usize, usize, S)]) -> S {
        if patches.is_empty() {
            return self.total();
        }
        let k = self.cols.rows();
        let mut sums = self.sums.clone();
        // Patched columns, with patch order preserved per column.
        let mut touched: Vec<(usize, Vec<S>)> = Vec::new();
        for (row, col, v) in patches {
            let idx = match touched.iter().position(|(c, _)| c == col) {
                Some(i) => i,
                None => {
                    touched.push((*col, self.cols.col(*col).to_vec()));
                    touched.len() - 1
                }
            };
            touched[idx].1[*row] = v.clone();
        }
        for (col, new_col) in &touched {
            let old_col = self.cols.col(*col);
            for mask in 1u32..(1 << k) {
                let delta = prod_over(new_col, mask).sub(&prod_over(old_col, mask));
                sums[mask as usize].add_assign(&delta);
            }
        }
        self.total_from(&sums)
    }

    fn total_from(&self, sums: &[S]) -> S {
        let mut out = S::zero();
        for p in &self.partitions {
            let mut term = S::one();
            for &b in &p.blocks {
                term.mul_assign(&sums[b as usize]);
            }
            let scaled = nat_mul(p.magnitude, &term);
            if p.negative {
                out.add_assign(&scaled.neg());
            } else {
                out.add_assign(&scaled);
            }
        }
        out
    }
}

fn prod_over<S: Semiring>(col: &[S], mask: u32) -> S {
    let mut acc = S::one();
    let mut rest = mask;
    while rest != 0 {
        let r = rest.trailing_zeros() as usize;
        rest &= rest - 1;
        acc.mul_assign(&col[r]);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perm_naive;
    use agq_semiring::{Int, Rat};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_int_matrix(k: usize, n: usize, seed: u64) -> ColMatrix<Int> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut m = ColMatrix::new(k);
        for _ in 0..n {
            let col: Vec<Int> = (0..k).map(|_| Int(rng.gen_range(-4..5))).collect();
            m.push_col(&col);
        }
        m
    }

    #[test]
    fn matches_naive_after_build() {
        for k in 1..=4 {
            let m = random_int_matrix(k, 6, k as u64);
            assert_eq!(RingPerm::build(m.clone()).total(), perm_naive(&m), "k={k}");
        }
    }

    #[test]
    fn random_update_sequences_stay_correct() {
        let mut rng = SmallRng::seed_from_u64(42);
        for k in 1..=3 {
            let m = random_int_matrix(k, 7, 1000 + k as u64);
            let mut dynamic = RingPerm::build(m.clone());
            let mut shadow = m;
            for _ in 0..40 {
                let r = rng.gen_range(0..k);
                let c = rng.gen_range(0..7);
                let v = Int(rng.gen_range(-4..5));
                dynamic.update(r, c, v);
                shadow.set(r, c, v);
                assert_eq!(dynamic.total(), perm_naive(&shadow));
            }
        }
    }

    #[test]
    fn peek_matches_naive_and_leaves_state() {
        let mut rng = SmallRng::seed_from_u64(8);
        let m = random_int_matrix(3, 7, 5);
        let dynamic = RingPerm::build(m.clone());
        for _ in 0..30 {
            let patches: Vec<(usize, usize, Int)> = (0..rng.gen_range(1..4))
                .map(|_| {
                    (
                        rng.gen_range(0..3),
                        rng.gen_range(0..7),
                        Int(rng.gen_range(-4..5)),
                    )
                })
                .collect();
            let mut shadow = m.clone();
            for (r, c, v) in &patches {
                shadow.set(*r, *c, *v);
            }
            assert_eq!(dynamic.peek(&patches), perm_naive(&shadow));
            assert_eq!(dynamic.total(), perm_naive(&m), "peek must not mutate");
        }
    }

    #[test]
    fn works_over_rationals() {
        let m = ColMatrix::from_rows(&[
            vec![Rat::new(1, 2), Rat::new(1, 3), Rat::new(2, 1)],
            vec![Rat::new(1, 5), Rat::new(3, 4), Rat::new(0, 1)],
        ]);
        assert_eq!(RingPerm::build(m.clone()).total(), perm_naive(&m));
    }
}
