//! Set partitions of `{0, …, k−1}` and their Möbius coefficients, used by
//! the ring elimination of permanent gates (Lemma 15).

/// One set partition: blocks as disjoint nonempty row masks covering
/// `(1 << k) − 1`, plus the Möbius coefficient
/// `μ(π) = Π_{B ∈ π} (−1)^{|B|−1} (|B|−1)!` split into sign and magnitude.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// Disjoint nonempty masks whose union is the full row set.
    pub blocks: Vec<u32>,
    /// True when `μ(π) < 0`.
    pub negative: bool,
    /// `|μ(π)|`.
    pub magnitude: u64,
}

/// Enumerate all set partitions of `{0, …, k−1}` (Bell(k) many) together
/// with their Möbius coefficients. `k = 0` yields the single empty
/// partition with coefficient `+1`.
pub fn set_partitions(k: usize) -> Vec<Partition> {
    assert!(k <= crate::MAX_ROWS);
    let mut out = Vec::new();
    let mut blocks: Vec<u32> = Vec::new();
    rec(0, k, &mut blocks, &mut out);
    out
}

fn rec(i: usize, k: usize, blocks: &mut Vec<u32>, out: &mut Vec<Partition>) {
    if i == k {
        let mut negative = false;
        let mut magnitude = 1u64;
        for &b in blocks.iter() {
            let size = b.count_ones() as u64;
            if size.is_multiple_of(2) {
                negative = !negative;
            }
            magnitude *= factorial(size - 1);
        }
        out.push(Partition {
            blocks: blocks.clone(),
            negative,
            magnitude,
        });
        return;
    }
    // Element i joins an existing block or opens a new one. Restricting new
    // blocks to be opened by their least element enumerates each partition
    // exactly once (restricted growth).
    for j in 0..blocks.len() {
        blocks[j] |= 1 << i;
        rec(i + 1, k, blocks, out);
        blocks[j] &= !(1 << i);
    }
    blocks.push(1 << i);
    rec(i + 1, k, blocks, out);
    blocks.pop();
}

fn factorial(n: u64) -> u64 {
    (1..=n).product()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bell(k: usize) -> usize {
        [1usize, 1, 2, 5, 15, 52, 203, 877, 4140][k]
    }

    #[test]
    fn counts_match_bell_numbers() {
        for k in 0..=6 {
            assert_eq!(set_partitions(k).len(), bell(k), "k={k}");
        }
    }

    #[test]
    fn blocks_are_disjoint_and_cover() {
        for k in 1..=5 {
            for p in set_partitions(k) {
                let mut seen = 0u32;
                for &b in &p.blocks {
                    assert_ne!(b, 0);
                    assert_eq!(seen & b, 0, "blocks overlap");
                    seen |= b;
                }
                assert_eq!(seen, (1u32 << k) - 1, "blocks do not cover");
            }
        }
    }

    #[test]
    fn coefficients_k2_and_k3() {
        // k=2: {{0},{1}} → +1; {{0,1}} → −1.
        let ps = set_partitions(2);
        let single: Vec<_> = ps.iter().filter(|p| p.blocks.len() == 2).collect();
        let merged: Vec<_> = ps.iter().filter(|p| p.blocks.len() == 1).collect();
        assert_eq!(single.len(), 1);
        assert!(!single[0].negative && single[0].magnitude == 1);
        assert_eq!(merged.len(), 1);
        assert!(merged[0].negative && merged[0].magnitude == 1);
        // k=3: the full block has μ = +2.
        let ps = set_partitions(3);
        let full: Vec<_> = ps.iter().filter(|p| p.blocks.len() == 1).collect();
        assert!(!full[0].negative && full[0].magnitude == 2);
    }

    #[test]
    fn mobius_coefficients_sum_to_zero_for_k_ge_2() {
        // Σ_π μ(π) = 0 for k ≥ 2 (Möbius function of a nontrivial lattice
        // interval sums to zero).
        for k in 2..=6 {
            let mut total = 0i64;
            for p in set_partitions(k) {
                let m = p.magnitude as i64;
                total += if p.negative { -m } else { m };
            }
            assert_eq!(total, 0, "k={k}");
        }
    }
}
