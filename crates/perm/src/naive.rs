//! The defining-sum baseline for permanents.

use crate::ColMatrix;
use agq_semiring::Semiring;

/// Evaluate `perm(M)` directly from the definition: sum over all injective
/// assignments of rows to columns. Runs in `O(n^k)` time (with early
/// pruning on zero prefixes) — the baseline that the linear-time algorithms
/// are benchmarked against (Experiment E1).
pub fn perm_naive<S: Semiring>(m: &ColMatrix<S>) -> S {
    let n = m.cols();
    let mut used = vec![false; n];
    rec(m, 0, &S::one(), &mut used)
}

fn rec<S: Semiring>(m: &ColMatrix<S>, row: usize, acc: &S, used: &mut [bool]) -> S {
    if row == m.rows() {
        return acc.clone();
    }
    let mut total = S::zero();
    for c in 0..m.cols() {
        if used[c] {
            continue;
        }
        let next = acc.mul(m.get(row, c));
        // Pruning zero products is sound in every semiring: 0 annihilates.
        if next.is_zero() {
            continue;
        }
        used[c] = true;
        total.add_assign(&rec(m, row + 1, &next, used));
        used[c] = false;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use agq_semiring::Nat;

    #[test]
    fn two_by_two() {
        // perm [[a,b],[c,d]] = a·d + b·c
        let m = ColMatrix::from_rows(&[vec![Nat(1), Nat(2)], vec![Nat(3), Nat(4)]]);
        assert_eq!(perm_naive(&m), Nat(4 + 2 * 3));
    }

    #[test]
    fn three_rows_example_from_paper() {
        // perm of a 3×3 all-ones matrix = 3! = 6 (count of injections).
        let ones = vec![Nat(1); 3];
        let m = ColMatrix::from_rows(&[ones.clone(), ones.clone(), ones]);
        assert_eq!(perm_naive(&m), Nat(6));
    }

    #[test]
    fn one_row_is_row_sum() {
        let m = ColMatrix::from_rows(&[vec![Nat(2), Nat(3), Nat(4)]]);
        assert_eq!(perm_naive(&m), Nat(9));
    }
}
