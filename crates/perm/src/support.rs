//! Boolean permanent (system-of-distinct-representatives) tests on
//! column-type counts — the combinatorial core of Lemma 39.
//!
//! A Boolean `k × n` matrix `N` is summarized by `counts[mask]` = number of
//! columns whose support (set of rows `r` with `N[r,c] = 1`) equals `mask`.
//! `perm(N) = 1` iff an SDR exists, which by Hall's theorem holds iff every
//! row subset `R` has at least `|R|` columns intersecting it. All checks
//! here run in `O_k(1)` time (independent of `n`), which is what makes the
//! enumeration data structure of Lemma 39 maintainable in constant time.

/// Does a system of distinct representatives exist for *all* `k` rows,
/// given per-support-mask column counts (`counts.len() == 1 << k`)?
pub fn sdr_exists(k: usize, counts: &[i64]) -> bool {
    sdr_exists_rows(k, counts, ((1u64 << k) - 1) as u32)
}

/// Does an SDR exist for the row subset `rows`?
///
/// Hall's condition restricted to subsets of `rows`: for every nonempty
/// `R ⊆ rows`, the number of columns whose support meets `R` must be at
/// least `|R|`. Runs in `O(3^k)` via complement subset sums.
pub fn sdr_exists_rows(k: usize, counts: &[i64], rows: u32) -> bool {
    debug_assert_eq!(counts.len(), 1 << k);
    let total: i64 = counts.iter().sum();
    // Enumerate nonempty R ⊆ rows; columns *missing* R are those whose
    // support mask is a subset of !R.
    let mut r = rows;
    loop {
        if r != 0 {
            let comp = !r & (((1u64 << k) - 1) as u32);
            let mut missing = 0i64;
            let mut sub = comp;
            loop {
                missing += counts[sub as usize];
                if sub == 0 {
                    break;
                }
                sub = (sub - 1) & comp;
            }
            let available = total - missing;
            if available < r.count_ones() as i64 {
                return false;
            }
        }
        if r == 0 {
            break;
        }
        r = (r - 1) & rows;
    }
    true
}

/// Maximum matching size between the rows in `rows` and the columns,
/// given per-support-mask counts. Used for diagnostics and tests.
pub fn max_matching(k: usize, counts: &[i64], rows: u32) -> u32 {
    // König/Hall defect form: max matching = |rows| − max_R (|R| − N(R)).
    let total: i64 = counts.iter().sum();
    let mut best_defect: i64 = 0;
    let mut r = rows;
    loop {
        let comp = !r & (((1u64 << k) - 1) as u32);
        let mut missing = 0i64;
        let mut sub = comp;
        loop {
            missing += counts[sub as usize];
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & comp;
        }
        let available = total - missing;
        best_defect = best_defect.max(r.count_ones() as i64 - available);
        if r == 0 {
            break;
        }
        r = (r - 1) & rows;
    }
    (rows.count_ones() as i64 - best_defect).max(0) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColMatrix, FinitePerm};
    use agq_semiring::Bool;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn counts_of(m: &ColMatrix<Bool>) -> Vec<i64> {
        let k = m.rows();
        let mut counts = vec![0i64; 1 << k];
        for col in m.iter_cols() {
            let mut mask = 0usize;
            for (r, v) in col.iter().enumerate() {
                if v.0 {
                    mask |= 1 << r;
                }
            }
            counts[mask] += 1;
        }
        counts
    }

    #[test]
    fn agrees_with_boolean_permanent_on_random_matrices() {
        let mut rng = SmallRng::seed_from_u64(13);
        for k in 1..=4 {
            for n in [1usize, 3, 6, 10] {
                let mut m = ColMatrix::new(k);
                for _ in 0..n {
                    let col: Vec<Bool> = (0..k).map(|_| Bool(rng.gen_bool(0.4))).collect();
                    m.push_col(&col);
                }
                let expected = FinitePerm::build(m.clone()).total().0;
                assert_eq!(sdr_exists(k, &counts_of(&m)), expected, "k={k} n={n}");
            }
        }
    }

    #[test]
    fn subset_rows_hall() {
        // Column supports: {0}, {0} — rows {0} matchable, {0,1} not.
        let counts = {
            let mut c = vec![0i64; 4];
            c[0b01] = 2;
            c
        };
        assert!(sdr_exists_rows(2, &counts, 0b01));
        assert!(!sdr_exists_rows(2, &counts, 0b11));
        assert!(!sdr_exists_rows(2, &counts, 0b10));
        assert!(sdr_exists_rows(2, &counts, 0));
    }

    #[test]
    fn max_matching_counts() {
        let mut counts = vec![0i64; 8];
        counts[0b001] = 1; // column seen by row 0 only
        counts[0b011] = 1; // rows 0,1
        assert_eq!(max_matching(3, &counts, 0b111), 2);
        assert_eq!(max_matching(3, &counts, 0b011), 2);
        assert_eq!(max_matching(3, &counts, 0b100), 0);
    }
}
