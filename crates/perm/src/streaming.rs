//! Linear-time permanent evaluation in any commutative semiring.

use crate::ColMatrix;
use agq_semiring::Semiring;

/// Evaluate `perm(M)` of a `k × n` matrix in `O(n · 2^k · k)` semiring
/// operations — linear in `n` for fixed `k`, over *any* commutative
/// semiring (the unit-cost claim of Section 4).
///
/// The dynamic program maintains, for every subset `R'` of rows, the
/// permanent of the submatrix with rows `R'` and the columns seen so far;
/// appending a column `c` updates
/// `P[R'] ← P[R'] + Σ_{r ∈ R'} P[R' \ {r}] · M[r, c]`.
pub fn perm_streaming<S: Semiring>(m: &ColMatrix<S>) -> S {
    let mut p = PrefixPerm::new(m.rows());
    for col in m.iter_cols() {
        p.push_col(col);
    }
    p.total().clone()
}

/// The streaming subset DP as a reusable accumulator: feed columns one at a
/// time, read off the permanent of everything fed so far.
///
/// This is also the evaluation engine for permanent *gates* in compiled
/// circuits (`agq-circuit`), where columns arrive as child-gate values.
#[derive(Clone, Debug)]
pub struct PrefixPerm<S> {
    k: usize,
    /// `table[mask]` = permanent of the rows in `mask` × columns seen so far.
    table: Vec<S>,
}

impl<S: Semiring> PrefixPerm<S> {
    /// Fresh accumulator for `k` rows and zero columns: `P[∅] = 1`,
    /// everything else `0`.
    pub fn new(k: usize) -> Self {
        assert!(k <= crate::MAX_ROWS);
        let mut table = vec![S::zero(); 1 << k];
        table[0] = S::one();
        PrefixPerm { k, table }
    }

    /// Feed the next column (`col.len() == k`).
    pub fn push_col(&mut self, col: &[S]) {
        debug_assert_eq!(col.len(), self.k);
        // Descending mask order: P[mask \ {r}] is numerically smaller than
        // mask, hence still the pre-column value when we read it.
        for mask in (1..self.table.len()).rev() {
            let mut acc = self.table[mask].clone();
            let mut rest = mask;
            while rest != 0 {
                let r = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                if !col[r].is_zero() {
                    acc.add_assign(&self.table[mask & !(1 << r)].mul(&col[r]));
                }
            }
            self.table[mask] = acc;
        }
    }

    /// The permanent over all rows and all columns fed so far.
    pub fn total(&self) -> &S {
        &self.table[self.table.len() - 1]
    }

    /// The permanent of the row subset `mask` over all columns fed so far.
    pub fn subset(&self, mask: u32) -> &S {
        &self.table[mask as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agq_semiring::{MinPlus, Nat, Semiring};

    #[test]
    fn incremental_prefixes_are_consistent() {
        // Permanent of the first j columns must match a fresh computation.
        let rows = vec![
            vec![Nat(1), Nat(2), Nat(0), Nat(3)],
            vec![Nat(4), Nat(0), Nat(5), Nat(1)],
        ];
        let full = ColMatrix::from_rows(&rows);
        let mut acc = PrefixPerm::new(2);
        for j in 0..full.cols() {
            acc.push_col(full.col(j));
            let prefix_rows: Vec<Vec<Nat>> = rows.iter().map(|r| r[..=j].to_vec()).collect();
            let prefix = ColMatrix::from_rows(&prefix_rows);
            assert_eq!(acc.total(), &crate::perm_naive(&prefix), "prefix {j}");
        }
    }

    #[test]
    fn minplus_permanent_is_min_assignment() {
        // Two rows: perm = min over pairs of distinct columns of the sum.
        let m = ColMatrix::from_rows(&[
            vec![MinPlus(5), MinPlus(1), MinPlus(9)],
            vec![MinPlus(2), MinPlus(7), MinPlus(3)],
        ]);
        // candidates: (c0,c1):5+7=12,(c0,c2):5+3=8,(c1,c0):1+2=3,
        // (c1,c2):1+3=4,(c2,c0):9+2=11,(c2,c1):9+7=16 → min 3
        assert_eq!(perm_streaming(&m), MinPlus(3));
    }

    #[test]
    fn subset_masks_expose_partial_permanents() {
        let m = ColMatrix::from_rows(&[vec![Nat(1), Nat(2)], vec![Nat(3), Nat(4)]]);
        let mut acc = PrefixPerm::new(2);
        for c in m.iter_cols() {
            acc.push_col(c);
        }
        assert_eq!(acc.subset(0b00), &Nat::one());
        assert_eq!(acc.subset(0b01), &Nat(3)); // row 0 sum
        assert_eq!(acc.subset(0b10), &Nat(7)); // row 1 sum
        assert_eq!(acc.subset(0b11), &Nat(10));
    }
}
