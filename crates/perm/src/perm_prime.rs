//! The ordered permanent `perm′` and the Lemma 10 / Lemma 11 machinery.
//!
//! `perm′(M)` sums over *increasing* functions from the (ordered) rows to
//! the (ordered) columns. The paper uses it in two ways:
//!
//! * `perm(M) = Σ_{orderings of the rows} perm′(M reordered)` — reduces the
//!   permanent to `k!` ordered permanents;
//! * the split identity of Lemma 10,
//!   `perm′(M) = Σ_{i=0}^{k} perm′(A^l_i) · perm′(B^l_i)`, whose balanced
//!   recursive expansion is the log-depth, log-reach-out circuit of
//!   Lemma 11 (realized dynamically by [`crate::SegTreePerm`]).

use crate::ColMatrix;
use agq_semiring::Semiring;

/// Evaluate `perm′(M)` (increasing row→column assignments) in
/// `O(n · k)` time by a prefix dynamic program.
pub fn perm_prime<S: Semiring>(m: &ColMatrix<S>) -> S {
    let k = m.rows();
    // q[i] = perm′ of the first i rows over the columns seen so far.
    let mut q = vec![S::zero(); k + 1];
    q[0] = S::one();
    for col in m.iter_cols() {
        for i in (1..=k).rev() {
            let add = q[i - 1].mul(&col[i - 1]);
            q[i].add_assign(&add);
        }
    }
    q[k].clone()
}

/// Evaluate `perm′` restricted to the row range `rows` and the column range
/// `cols` (both half-open), as used by the split identity.
pub fn perm_prime_sub<S: Semiring>(
    m: &ColMatrix<S>,
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> S {
    let k = rows.len();
    let mut q = vec![S::zero(); k + 1];
    q[0] = S::one();
    for c in cols {
        for i in (1..=k).rev() {
            let add = q[i - 1].mul(m.get(rows.start + i - 1, c));
            q[i].add_assign(&add);
        }
    }
    q[k].clone()
}

/// The right-hand side of the Lemma 10 identity for a split at column `l`:
/// `Σ_{i=0}^{k} perm′(rows ≤ i × cols ≤ l) · perm′(rows > i × cols > l)`.
pub fn lemma10_rhs<S: Semiring>(m: &ColMatrix<S>, l: usize) -> S {
    let k = m.rows();
    let n = m.cols();
    let mut out = S::zero();
    for i in 0..=k {
        let a = perm_prime_sub(m, 0..i, 0..l);
        let b = perm_prime_sub(m, i..k, l..n);
        out.add_assign(&a.mul(&b));
    }
    out
}

/// `perm(M)` computed as `Σ_{row orderings} perm′` — exponential in `k`,
/// linear in `n`; used to validate the reduction the paper relies on.
pub fn perm_via_orderings<S: Semiring>(m: &ColMatrix<S>) -> S {
    let k = m.rows();
    let mut order: Vec<usize> = (0..k).collect();
    let mut out = S::zero();
    permute(&mut order, 0, &mut |perm_order| {
        // Build the reordered matrix view lazily via a temporary matrix.
        let rows: Vec<Vec<S>> = perm_order
            .iter()
            .map(|&r| (0..m.cols()).map(|c| m.get(r, c).clone()).collect())
            .collect();
        let reordered = ColMatrix::from_rows(&rows);
        out.add_assign(&perm_prime(&reordered));
    });
    out
}

fn permute<F: FnMut(&[usize])>(xs: &mut Vec<usize>, i: usize, f: &mut F) {
    if i == xs.len() {
        f(xs);
        return;
    }
    for j in i..xs.len() {
        xs.swap(i, j);
        permute(xs, i + 1, f);
        xs.swap(i, j);
    }
}

/// Structural statistics of the balanced Lemma 11 expansion of `perm′` for
/// a `k × n` matrix: witnesses the claimed `O_k(log n)` depth and
/// reach-out with `O_k(1)` fan-out and `O_k(n)` size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lemma11Stats {
    /// Total gates in the expansion.
    pub gates: usize,
    /// Longest input→output path.
    pub depth: usize,
    /// Maximum number of gates reachable from any single gate.
    pub max_reach_out: usize,
}

/// Expand the Lemma 10 recursion at midpoints down to single columns and
/// measure the resulting circuit (without building gate objects): each
/// recursion node `(rows i..j, cols lo..hi)` contributes one addition gate
/// fed by `j − i + 1` multiplication gates.
pub fn lemma11_stats(k: usize, n: usize) -> Lemma11Stats {
    fn rec(n: usize, k: usize, gates: &mut usize, depth: &mut usize, d: usize) -> usize {
        // Returns the reach-out of this node's output gate; the recursion
        // shape is identical for every row interval, so we count one
        // representative per column interval and scale by the O(k^2)
        // row-interval multiplicity in `gates`.
        *depth = (*depth).max(d);
        let intervals = k * (k + 1) / 2 + 1;
        if n <= 1 {
            *gates += intervals;
            return 1;
        }
        let half = n / 2;
        // one add gate + (k+1) mul gates per row interval
        *gates += intervals * (k + 2);
        let left = rec(half, k, gates, depth, d + 2);
        let right = rec(n - half, k, gates, depth, d + 2);
        left.max(right) + 2
    }
    let mut gates = 0;
    let mut depth = 0;
    let reach = rec(n.max(1), k, &mut gates, &mut depth, 0);
    Lemma11Stats {
        gates,
        depth,
        max_reach_out: reach,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{perm_naive, perm_streaming};
    use agq_semiring::Nat;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(k: usize, n: usize, seed: u64) -> ColMatrix<Nat> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut m = ColMatrix::new(k);
        for _ in 0..n {
            let col: Vec<Nat> = (0..k).map(|_| Nat(rng.gen_range(0..4))).collect();
            m.push_col(&col);
        }
        m
    }

    #[test]
    fn perm_prime_counts_increasing_assignments() {
        // All-ones 2×3: increasing pairs (c1<c2) → C(3,2) = 3.
        let ones = vec![Nat(1); 3];
        let m = ColMatrix::from_rows(&[ones.clone(), ones]);
        assert_eq!(perm_prime(&m), Nat(3));
    }

    #[test]
    fn lemma10_identity_holds_at_every_split() {
        for k in 1..=4 {
            let m = random_matrix(k, 9, k as u64 * 3 + 1);
            let lhs = perm_prime(&m);
            for l in 0..=m.cols() {
                assert_eq!(lhs, lemma10_rhs(&m, l), "k={k} l={l}");
            }
        }
    }

    #[test]
    fn orderings_reduction_matches_permanent() {
        for k in 1..=4 {
            let m = random_matrix(k, 7, 17 + k as u64);
            assert_eq!(perm_via_orderings(&m), perm_naive(&m), "k={k}");
            assert_eq!(perm_via_orderings(&m), perm_streaming(&m), "k={k}");
        }
    }

    #[test]
    fn lemma11_depth_and_reach_are_logarithmic() {
        let small = lemma11_stats(3, 1 << 6);
        let big = lemma11_stats(3, 1 << 12);
        // Doubling the exponent should roughly double depth/reach-out,
        // while gates stay O(n).
        assert!(big.depth <= 2 * small.depth + 4);
        assert!(big.max_reach_out <= 2 * small.max_reach_out + 4);
        assert!(big.gates >= 1 << 12);
        assert!(big.gates <= 200 * (1 << 12));
    }
}
