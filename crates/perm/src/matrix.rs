//! Column-major rectangular matrices with few rows.

use crate::MAX_ROWS;
use agq_semiring::Semiring;

/// A `k × n` matrix stored column-major, `k ≤ MAX_ROWS`.
///
/// In the paper's use the rows are indexed by query atoms and the columns
/// by data elements, so `n` grows with the database while `k` is fixed.
/// Column-major layout keeps the per-column updates of Section 4 cache
/// friendly.
#[derive(Clone, Debug, PartialEq)]
pub struct ColMatrix<S> {
    k: usize,
    data: Vec<S>,
}

impl<S: Semiring> ColMatrix<S> {
    /// Empty matrix with `k` rows.
    ///
    /// # Panics
    /// Panics if `k > MAX_ROWS`.
    pub fn new(k: usize) -> Self {
        assert!(k <= MAX_ROWS, "at most {MAX_ROWS} rows supported, got {k}");
        ColMatrix {
            k,
            data: Vec::new(),
        }
    }

    /// Empty matrix with `k` rows and room for `n` columns.
    pub fn with_capacity(k: usize, n: usize) -> Self {
        let mut m = Self::new(k);
        m.data.reserve(k * n);
        m
    }

    /// Build from a row-major list of rows (all of equal length).
    pub fn from_rows(rows: &[Vec<S>]) -> Self {
        let k = rows.len();
        let n = rows.first().map_or(0, Vec::len);
        assert!(
            rows.iter().all(|r| r.len() == n),
            "all rows must have equal length"
        );
        let mut m = Self::with_capacity(k, n);
        for c in 0..n {
            for row in rows {
                m.data.push(row[c].clone());
            }
        }
        m
    }

    /// Number of rows `k`.
    pub fn rows(&self) -> usize {
        self.k
    }

    /// Number of columns `n`.
    pub fn cols(&self) -> usize {
        self.data.len().checked_div(self.k).unwrap_or(0)
    }

    /// Append a column (`col.len() == k`).
    pub fn push_col(&mut self, col: &[S]) {
        assert_eq!(col.len(), self.k, "column has wrong height");
        self.data.extend_from_slice(col);
    }

    /// The entry at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> &S {
        &self.data[col * self.k + row]
    }

    /// Overwrite the entry at `(row, col)`, returning the old value.
    pub fn set(&mut self, row: usize, col: usize, value: S) -> S {
        std::mem::replace(&mut self.data[col * self.k + row], value)
    }

    /// The column `col` as a slice of length `k`.
    pub fn col(&self, col: usize) -> &[S] {
        &self.data[col * self.k..(col + 1) * self.k]
    }

    /// Iterate over columns as slices.
    pub fn iter_cols(&self) -> impl Iterator<Item = &[S]> {
        self.data.chunks_exact(self.k.max(1)).take(self.cols())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agq_semiring::Nat;

    #[test]
    fn layout_roundtrip() {
        let m = ColMatrix::from_rows(&[vec![Nat(1), Nat(2), Nat(3)], vec![Nat(4), Nat(5), Nat(6)]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(*m.get(0, 2), Nat(3));
        assert_eq!(*m.get(1, 0), Nat(4));
        assert_eq!(m.col(1), &[Nat(2), Nat(5)]);
    }

    #[test]
    fn set_returns_old() {
        let mut m = ColMatrix::from_rows(&[vec![Nat(1)]]);
        assert_eq!(m.set(0, 0, Nat(9)), Nat(1));
        assert_eq!(*m.get(0, 0), Nat(9));
    }

    #[test]
    #[should_panic(expected = "wrong height")]
    fn push_wrong_height_panics() {
        let mut m: ColMatrix<Nat> = ColMatrix::new(2);
        m.push_col(&[Nat(1)]);
    }
}
