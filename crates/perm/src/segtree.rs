//! Logarithmic-update permanent maintenance for arbitrary semirings
//! (Lemma 10 / Lemma 11 / Corollary 13).

use crate::ColMatrix;
use agq_semiring::Semiring;

/// Dynamic permanent of a `k × n` matrix over an arbitrary commutative
/// semiring: `O(n · 3^k)` build, `O(3^k · log n)` per single-entry update.
///
/// This realizes the divide-and-conquer of Lemma 10 as a balanced segment
/// tree over the columns. Each node stores, for every row subset `R'`, the
/// permanent of `R'` × (the node's column range); merging two children is
/// the subset convolution `P[R'] = Σ_{R'' ⊆ R'} L[R''] · R[R' \ R'']`,
/// which specializes to the paper's `perm′` recursion once row orders are
/// fixed (see [`crate::perm_prime`] for the literal Lemma 10 identity).
/// The logarithmic update bound is optimal for general semirings by
/// Proposition 14 (sorting lower bound via `(ℕ ∪ {∞}, min, +)`).
///
/// All node tables live in **one contiguous buffer** (`2 · size · 2^k`
/// entries, heap order): updates repair the root path in place with no
/// allocation, and the read-only [`SegTreePerm::peek`] walks it with two
/// small ping-pong buffers.
pub struct SegTreePerm<S> {
    k: usize,
    n: usize,
    /// Number of leaves, `n` rounded up to a power of two (min 1).
    size: usize,
    /// Node tables, `2^k` entries each, nodes in heap order (root at 1):
    /// table of `node` is `tables[node << k .. (node + 1) << k]`.
    tables: Vec<S>,
    cols: ColMatrix<S>,
}

impl<S: Semiring> SegTreePerm<S> {
    /// Build the tree over the columns of `cols`.
    pub fn build(cols: ColMatrix<S>) -> Self {
        let k = cols.rows();
        let n = cols.cols();
        let size = n.next_power_of_two().max(1);
        // empty-range tables everywhere: perm(∅ rows) = 1, else 0
        let mut tables = Vec::with_capacity((2 * size) << k);
        for _ in 0..2 * size {
            for mask in 0..1usize << k {
                tables.push(if mask == 0 { S::one() } else { S::zero() });
            }
        }
        let mut tree = SegTreePerm {
            k,
            n,
            size,
            tables,
            cols,
        };
        for c in 0..n {
            tree.write_leaf(c);
        }
        for node in (1..tree.size).rev() {
            tree.merge_into_node(node);
        }
        tree
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.n
    }

    /// The current entry at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> &S {
        self.cols.get(row, col)
    }

    /// The table of `node` as a slice of `2^k` entries.
    fn table(&self, node: usize) -> &[S] {
        &self.tables[node << self.k..(node + 1) << self.k]
    }

    /// The permanent of the full matrix.
    pub fn total(&self) -> &S {
        &self.tables[(1 << self.k) + ((1 << self.k) - 1)]
    }

    /// Overwrite entry `(row, col)` and repair the root path:
    /// `O(3^k log n)` semiring operations, no allocation.
    pub fn update(&mut self, row: usize, col: usize, value: S) {
        assert!(col < self.n, "column {col} out of range");
        self.cols.set(row, col, value);
        self.refresh_col(col);
    }

    /// Overwrite a whole column and repair the root path.
    pub fn update_col(&mut self, col: usize, values: &[S]) {
        assert!(col < self.n, "column {col} out of range");
        for (r, v) in values.iter().enumerate() {
            self.cols.set(r, col, v.clone());
        }
        self.refresh_col(col);
    }

    /// Overwrite several entries and repair the **union** of their root
    /// paths once: all touched leaves are rewritten first, then ancestors
    /// are merged level by level with shared ancestors recomputed a
    /// single time. `p` patches touching `c` distinct columns cost
    /// `O(3^k · min(c · log n, n))` instead of the
    /// `O(3^k · p · log n)` of one [`SegTreePerm::update`] per patch —
    /// the batched-ingestion path of the dynamic evaluator. Later patches
    /// to the same entry win.
    pub fn update_batch(&mut self, patches: &[(usize, usize, S)]) {
        for (row, col, v) in patches {
            assert!(*col < self.n, "column {col} out of range");
            self.cols.set(*row, *col, v.clone());
        }
        let mut frontier: Vec<usize> = patches.iter().map(|(_, c, _)| self.size + c).collect();
        frontier.sort_unstable();
        frontier.dedup();
        if let [leaf] = frontier[..] {
            self.refresh_col(leaf - self.size);
            return;
        }
        for &leaf in &frontier {
            self.write_leaf(leaf - self.size);
        }
        // All leaves sit on one level (the tree is perfect), so mapping
        // the sorted frontier to parents keeps it sorted — deduping
        // adjacent ids merges the paths as they join.
        while frontier.first().is_some_and(|&node| node > 1) {
            let mut w = 0;
            for i in 0..frontier.len() {
                let parent = frontier[i] / 2;
                if w == 0 || frontier[w - 1] != parent {
                    frontier[w] = parent;
                    w += 1;
                }
            }
            frontier.truncate(w);
            for &node in &frontier {
                self.merge_into_node(node);
            }
        }
    }

    /// Evaluate the permanent with some entries *temporarily* replaced —
    /// the query-by-updates trick in the proof of Theorem 8. The structure
    /// is restored before returning.
    pub fn peek_with(&mut self, patches: &[(usize, usize, S)]) -> S {
        let mut saved = Vec::with_capacity(patches.len());
        for (row, col, v) in patches {
            saved.push((*row, *col, self.cols.get(*row, *col).clone()));
            self.update(*row, *col, v.clone());
        }
        let out = self.total().clone();
        for (row, col, v) in saved.into_iter().rev() {
            self.update(row, col, v);
        }
        out
    }

    /// Evaluate the permanent with some entries replaced, **without
    /// mutating** the structure: only the root paths of the patched
    /// columns are recomputed, into a transient overlay
    /// (`O(3^k · p · log n)` for `p` patched columns). Later patches to
    /// the same entry win.
    pub fn peek(&self, patches: &[(usize, usize, S)]) -> S {
        self.peek_rows(patches, (1 << self.k) - 1)
    }

    /// [`SegTreePerm::peek`] restricted to a **row subset**: the permanent
    /// of the rows in `row_mask` over all columns, with some entries
    /// replaced. The node tables already hold every row-subset permanent,
    /// so this is the same overlay walk reading a different root entry —
    /// the rest-count query of rank descent (count the completions of
    /// rows `r+1..k` once the columns chosen by rows `≤ r` are zeroed).
    /// `row_mask = 0` returns `one` (the empty permanent).
    pub fn peek_rows(&self, patches: &[(usize, usize, S)], row_mask: usize) -> S {
        debug_assert!(row_mask < 1 << self.k, "row mask out of range");
        match self.peek_walk(patches) {
            Some(root) => root[row_mask].clone(),
            None => self.table(1)[row_mask].clone(),
        }
    }

    /// The **whole patched root table** — every row-subset permanent of
    /// the matrix with `patches` applied, in one overlay walk. Rank
    /// descent reads many row subsets against one excluded-column
    /// prefix (the inclusion–exclusion rest counts of Lemma 23), so one
    /// table query replaces a [`SegTreePerm::peek_rows`] call per
    /// subset.
    pub fn peek_table(&self, patches: &[(usize, usize, S)]) -> Vec<S> {
        match self.peek_walk(patches) {
            Some(root) => root,
            None => self.table(1).to_vec(),
        }
    }

    /// The shared overlay walk of [`SegTreePerm::peek_rows`] /
    /// [`SegTreePerm::peek_table`]: the root table with `patches`
    /// applied, or `None` when the overlay provably equals the stored
    /// root table.
    fn peek_walk(&self, patches: &[(usize, usize, S)]) -> Option<Vec<S>> {
        if patches.is_empty() {
            return None;
        }
        // Fast path — all patches hit one column (the common case for
        // point queries): walk the single root path with two ping-pong
        // buffers instead of a per-level frontier.
        let col0 = patches[0].1;
        if patches.iter().all(|(_, c, _)| *c == col0) {
            assert!(col0 < self.n, "column {col0} out of range");
            let mut cur = self.patched_leaf(col0, patches);
            let mut buf: Vec<S> = Vec::with_capacity(1 << self.k);
            let mut node = self.size + col0;
            // Early exit: once the overlay table equals the stored table
            // at some node, every ancestor is unchanged too (frequent in
            // idempotent semirings like (min, +)).
            while node > 1 {
                if cur == self.table(node) {
                    return None;
                }
                let sibling = self.table(node ^ 1);
                if node.is_multiple_of(2) {
                    merge_tables_into(self.k, &cur, sibling, &mut buf);
                } else {
                    merge_tables_into(self.k, sibling, &cur, &mut buf);
                }
                std::mem::swap(&mut cur, &mut buf);
                node /= 2;
            }
            return Some(cur);
        }
        // General path: patched leaf tables, one per affected column
        // (patch order is preserved within a column, so the last write to
        // an entry wins).
        let mut frontier: Vec<(usize, Vec<S>)> = Vec::with_capacity(patches.len());
        for (row, col, v) in patches {
            assert!(*col < self.n, "column {col} out of range");
            let node = self.size + *col;
            let idx = match frontier.iter().position(|(nd, _)| *nd == node) {
                Some(i) => i,
                None => {
                    frontier.push((node, self.table(node).to_vec()));
                    frontier.len() - 1
                }
            };
            frontier[idx].1[1 << *row] = v.clone();
        }
        frontier.sort_by_key(|(node, _)| *node);
        // Walk the affected paths up level by level, merging against the
        // stored sibling tables (or a sibling overlay, when both children
        // of a node are patched). Overlay tables that match the stored
        // table are dropped — their ancestors cannot change.
        while !frontier.is_empty() && (frontier.len() > 1 || frontier[0].0 > 1) {
            let mut next: Vec<(usize, Vec<S>)> = Vec::with_capacity(frontier.len());
            let mut i = 0;
            while i < frontier.len() {
                let node = frontier[i].0;
                if frontier[i].1 == self.table(node) {
                    i += 1;
                    continue;
                }
                if node.is_multiple_of(2)
                    && i + 1 < frontier.len()
                    && frontier[i + 1].0 == node + 1
                    && frontier[i + 1].1 != self.table(node + 1)
                {
                    let merged = merge_tables(self.k, &frontier[i].1, &frontier[i + 1].1);
                    next.push((node / 2, merged));
                    i += 2;
                } else {
                    let sibling = self.table(node ^ 1);
                    let merged = if node.is_multiple_of(2) {
                        merge_tables(self.k, &frontier[i].1, sibling)
                    } else {
                        merge_tables(self.k, sibling, &frontier[i].1)
                    };
                    next.push((node / 2, merged));
                    i += 1;
                }
            }
            frontier = next;
        }
        frontier.pop().map(|(_, root)| root)
    }

    /// The leaf table of `col` with same-column patches applied.
    fn patched_leaf(&self, col: usize, patches: &[(usize, usize, S)]) -> Vec<S> {
        let mut t = self.table(self.size + col).to_vec();
        for (row, _, v) in patches {
            t[1 << *row] = v.clone();
        }
        t
    }

    fn refresh_col(&mut self, col: usize) {
        self.write_leaf(col);
        let mut node = (self.size + col) / 2;
        while node >= 1 {
            self.merge_into_node(node);
            node /= 2;
        }
    }

    /// (Re)write the leaf table of column `c` from the matrix: only ∅ and
    /// singleton row sets have nonzero permanents.
    fn write_leaf(&mut self, c: usize) {
        let base = (self.size + c) << self.k;
        self.tables[base] = S::one();
        for mask in 1..1usize << self.k {
            self.tables[base + mask] = if mask.is_power_of_two() {
                self.cols.get(mask.trailing_zeros() as usize, c).clone()
            } else {
                S::zero()
            };
        }
    }

    /// Subset-convolve the two children of `node` into `node`, in place.
    fn merge_into_node(&mut self, node: usize) {
        let k = self.k;
        for mask in 0..1u32 << k {
            let mut acc = S::zero();
            let mut sub = mask;
            loop {
                let l = &self.tables[((2 * node) << k) + sub as usize];
                let r = &self.tables[((2 * node + 1) << k) + (mask & !sub) as usize];
                acc.add_assign(&l.mul(r));
                if sub == 0 {
                    break;
                }
                sub = (sub - 1) & mask;
            }
            self.tables[(node << k) + mask as usize] = acc;
        }
    }
}

/// Subset-convolve two per-row-subset permanent tables:
/// `out[R'] = Σ_{R'' ⊆ R'} left[R''] · right[R' \ R'']`.
fn merge_tables<S: Semiring>(k: usize, left: &[S], right: &[S]) -> Vec<S> {
    let mut out = Vec::with_capacity(1 << k);
    merge_tables_into(k, left, right, &mut out);
    out
}

/// [`merge_tables`] into a reusable buffer (cleared first).
fn merge_tables_into<S: Semiring>(k: usize, left: &[S], right: &[S], out: &mut Vec<S>) {
    out.clear();
    for mask in 0..(1u32 << k) {
        let mut acc = S::zero();
        let mut sub = mask;
        loop {
            acc.add_assign(&left[sub as usize].mul(&right[(mask & !sub) as usize]));
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & mask;
        }
        out.push(acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{perm_naive, perm_streaming};
    use agq_semiring::{MinPlus, Nat};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(k: usize, n: usize, seed: u64) -> ColMatrix<Nat> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut m = ColMatrix::new(k);
        for _ in 0..n {
            let col: Vec<Nat> = (0..k).map(|_| Nat(rng.gen_range(0..4))).collect();
            m.push_col(&col);
        }
        m
    }

    #[test]
    fn build_matches_streaming_various_sizes() {
        for k in 1..=4 {
            for n in [1usize, 2, 3, 5, 8, 13] {
                let m = random_matrix(k, n, (k * 1000 + n) as u64);
                let tree = SegTreePerm::build(m.clone());
                assert_eq!(tree.total(), &perm_streaming(&m), "k={k} n={n}");
            }
        }
    }

    #[test]
    fn batch_updates_match_sequential() {
        let mut rng = SmallRng::seed_from_u64(17);
        for n in [1usize, 2, 5, 9, 16] {
            let m = random_matrix(3, n, n as u64);
            let mut batched = SegTreePerm::build(m.clone());
            let mut sequential = SegTreePerm::build(m);
            for _ in 0..20 {
                let patches: Vec<(usize, usize, Nat)> = (0..rng.gen_range(0..8))
                    .map(|_| {
                        (
                            rng.gen_range(0..3),
                            rng.gen_range(0..n),
                            Nat(rng.gen_range(0..4)),
                        )
                    })
                    .collect();
                batched.update_batch(&patches);
                for (r, c, v) in &patches {
                    sequential.update(*r, *c, *v);
                }
                assert_eq!(batched.total(), sequential.total(), "n={n}");
            }
        }
    }

    #[test]
    fn updates_track_naive() {
        let mut rng = SmallRng::seed_from_u64(11);
        let m = random_matrix(3, 10, 2);
        let mut tree = SegTreePerm::build(m.clone());
        let mut shadow = m;
        for _ in 0..60 {
            let r = rng.gen_range(0..3);
            let c = rng.gen_range(0..10);
            let v = Nat(rng.gen_range(0..4));
            tree.update(r, c, v);
            shadow.set(r, c, v);
            assert_eq!(tree.total(), &perm_naive(&shadow));
        }
    }

    #[test]
    fn minplus_updates() {
        let mut m = ColMatrix::new(2);
        for w in [3u64, 1, 4, 1, 5] {
            m.push_col(&[MinPlus(w), MinPlus(w + 1)]);
        }
        let mut tree = SegTreePerm::build(m.clone());
        assert_eq!(tree.total(), &perm_naive(&m));
        tree.update(0, 2, MinPlus::INF);
        m.set(0, 2, MinPlus::INF);
        assert_eq!(tree.total(), &perm_naive(&m));
    }

    #[test]
    fn peek_with_restores_state() {
        let m = random_matrix(2, 6, 9);
        let mut tree = SegTreePerm::build(m.clone());
        let before = *tree.total();
        let peeked = tree.peek_with(&[(0, 0, Nat(0)), (1, 3, Nat(7))]);
        let mut shadow = m;
        shadow.set(0, 0, Nat(0));
        shadow.set(1, 3, Nat(7));
        assert_eq!(peeked, perm_naive(&shadow));
        assert_eq!(tree.total(), &before, "peek must restore");
    }

    #[test]
    fn peek_matches_peek_with_and_leaves_state() {
        let mut rng = SmallRng::seed_from_u64(13);
        let m = random_matrix(3, 9, 4);
        let mut tree = SegTreePerm::build(m.clone());
        for _ in 0..40 {
            let patches: Vec<(usize, usize, Nat)> = (0..rng.gen_range(1..5))
                .map(|_| {
                    (
                        rng.gen_range(0..3),
                        rng.gen_range(0..9),
                        Nat(rng.gen_range(0..4)),
                    )
                })
                .collect();
            let before = *tree.total();
            let peeked = tree.peek(&patches);
            assert_eq!(*tree.total(), before, "peek must not mutate");
            assert_eq!(peeked, tree.peek_with(&patches));
        }
    }

    #[test]
    fn peek_minplus_single_and_multi_column() {
        let mut rng = SmallRng::seed_from_u64(29);
        let mut m = ColMatrix::new(2);
        for _ in 0..11 {
            m.push_col(&[MinPlus(rng.gen_range(1..30)), MinPlus(rng.gen_range(1..30))]);
        }
        let tree = SegTreePerm::build(m.clone());
        for _ in 0..40 {
            let patches: Vec<(usize, usize, MinPlus)> = (0..rng.gen_range(1..4))
                .map(|_| {
                    (
                        rng.gen_range(0..2),
                        rng.gen_range(0..11),
                        if rng.gen_bool(0.3) {
                            MinPlus::INF
                        } else {
                            MinPlus(rng.gen_range(1..30))
                        },
                    )
                })
                .collect();
            let mut shadow = m.clone();
            for (r, c, v) in &patches {
                shadow.set(*r, *c, *v);
            }
            assert_eq!(tree.peek(&patches), perm_naive(&shadow));
        }
    }

    #[test]
    fn peek_rows_matches_naive_submatrix() {
        let mut rng = SmallRng::seed_from_u64(37);
        for n in [1usize, 4, 9] {
            let m = random_matrix(3, n, 6 + n as u64);
            let tree = SegTreePerm::build(m.clone());
            for _ in 0..20 {
                let patches: Vec<(usize, usize, Nat)> = (0..rng.gen_range(0..4))
                    .map(|_| {
                        (
                            rng.gen_range(0..3),
                            rng.gen_range(0..n),
                            Nat(rng.gen_range(0..4)),
                        )
                    })
                    .collect();
                let mut shadow = m.clone();
                for (r, c, v) in &patches {
                    shadow.set(*r, *c, *v);
                }
                let table = tree.peek_table(&patches);
                for (row_mask, expect) in table.iter().enumerate() {
                    let got = tree.peek_rows(&patches, row_mask);
                    assert_eq!(*expect, got, "peek_table ≡ peek_rows per mask");
                    if row_mask == 0 {
                        assert_eq!(got, Nat(1), "empty row set");
                        continue;
                    }
                    let rows: Vec<usize> = (0..3).filter(|r| row_mask >> r & 1 == 1).collect();
                    let mut sub = ColMatrix::new(rows.len());
                    for c in 0..n {
                        let col: Vec<Nat> = rows.iter().map(|&r| *shadow.get(r, c)).collect();
                        sub.push_col(&col);
                    }
                    assert_eq!(got, perm_naive(&sub), "n={n} mask={row_mask}");
                }
            }
        }
    }

    #[test]
    fn peek_last_patch_wins_per_entry() {
        let m = random_matrix(2, 4, 8);
        let tree = SegTreePerm::build(m.clone());
        let peeked = tree.peek(&[(0, 1, Nat(5)), (0, 1, Nat(2))]);
        let mut shadow = m;
        shadow.set(0, 1, Nat(2));
        assert_eq!(peeked, perm_naive(&shadow));
    }

    #[test]
    fn single_column_tree() {
        let m = random_matrix(1, 1, 5);
        let tree = SegTreePerm::build(m.clone());
        assert_eq!(tree.total(), &perm_naive(&m));
    }
}
