//! Logarithmic-update permanent maintenance for arbitrary semirings
//! (Lemma 10 / Lemma 11 / Corollary 13).

use crate::ColMatrix;
use agq_semiring::Semiring;

/// Dynamic permanent of a `k × n` matrix over an arbitrary commutative
/// semiring: `O(n · 3^k)` build, `O(3^k · log n)` per single-entry update.
///
/// This realizes the divide-and-conquer of Lemma 10 as a balanced segment
/// tree over the columns. Each node stores, for every row subset `R'`, the
/// permanent of `R'` × (the node's column range); merging two children is
/// the subset convolution `P[R'] = Σ_{R'' ⊆ R'} L[R''] · R[R' \ R'']`,
/// which specializes to the paper's `perm′` recursion once row orders are
/// fixed (see [`crate::perm_prime`] for the literal Lemma 10 identity).
/// The logarithmic update bound is optimal for general semirings by
/// Proposition 14 (sorting lower bound via `(ℕ ∪ {∞}, min, +)`).
pub struct SegTreePerm<S> {
    k: usize,
    n: usize,
    /// Number of leaves, `n` rounded up to a power of two (min 1).
    size: usize,
    /// `tables[node]` has `2^k` entries; nodes in heap order, root at 1.
    tables: Vec<Vec<S>>,
    cols: ColMatrix<S>,
}

impl<S: Semiring> SegTreePerm<S> {
    /// Build the tree over the columns of `cols`.
    pub fn build(cols: ColMatrix<S>) -> Self {
        let k = cols.rows();
        let n = cols.cols();
        let size = n.next_power_of_two().max(1);
        let empty = Self::empty_table(k);
        let mut tables = vec![empty; 2 * size];
        let mut tree = SegTreePerm {
            k,
            n,
            size,
            tables,
            cols,
        };
        for c in 0..n {
            tree.tables[tree.size + c] = tree.leaf_table(c);
        }
        for node in (1..tree.size).rev() {
            tree.tables[node] = tree.merge(node);
        }
        // `tables` moved into `tree` above; shadowing silences the unused
        // first binding without an extra allocation.
        tables = Vec::new();
        let _ = tables;
        tree
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.n
    }

    /// The current entry at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> &S {
        self.cols.get(row, col)
    }

    /// The permanent of the full matrix.
    pub fn total(&self) -> &S {
        &self.tables[1][(1 << self.k) - 1]
    }

    /// Overwrite entry `(row, col)` and repair the root path:
    /// `O(3^k log n)` semiring operations.
    pub fn update(&mut self, row: usize, col: usize, value: S) {
        assert!(col < self.n, "column {col} out of range");
        self.cols.set(row, col, value);
        self.refresh_col(col);
    }

    /// Overwrite a whole column and repair the root path.
    pub fn update_col(&mut self, col: usize, values: &[S]) {
        assert!(col < self.n, "column {col} out of range");
        for (r, v) in values.iter().enumerate() {
            self.cols.set(r, col, v.clone());
        }
        self.refresh_col(col);
    }

    /// Evaluate the permanent with some entries *temporarily* replaced —
    /// the query-by-updates trick in the proof of Theorem 8. The structure
    /// is restored before returning.
    pub fn peek_with(&mut self, patches: &[(usize, usize, S)]) -> S {
        let mut saved = Vec::with_capacity(patches.len());
        for (row, col, v) in patches {
            saved.push((*row, *col, self.cols.get(*row, *col).clone()));
            self.update(*row, *col, v.clone());
        }
        let out = self.total().clone();
        for (row, col, v) in saved.into_iter().rev() {
            self.update(row, col, v);
        }
        out
    }

    fn refresh_col(&mut self, col: usize) {
        self.tables[self.size + col] = self.leaf_table(col);
        let mut node = (self.size + col) / 2;
        while node >= 1 {
            self.tables[node] = self.merge(node);
            node /= 2;
        }
    }

    /// Table of a node covering zero columns: perm(∅ rows) = 1, else 0.
    fn empty_table(k: usize) -> Vec<S> {
        let mut t = vec![S::zero(); 1 << k];
        t[0] = S::one();
        t
    }

    /// Table of the single column `c`: only ∅ and singleton row sets have
    /// nonzero permanents.
    fn leaf_table(&self, c: usize) -> Vec<S> {
        let mut t = Self::empty_table(self.k);
        if c < self.n {
            for r in 0..self.k {
                t[1 << r] = self.cols.get(r, c).clone();
            }
        }
        t
    }

    /// Subset-convolve the two children of `node`.
    fn merge(&self, node: usize) -> Vec<S> {
        let left = &self.tables[2 * node];
        let right = &self.tables[2 * node + 1];
        let mut out = Vec::with_capacity(1 << self.k);
        for mask in 0..(1u32 << self.k) {
            let mut acc = S::zero();
            let mut sub = mask;
            loop {
                acc.add_assign(
                    &left[sub as usize].mul(&right[(mask & !sub) as usize]),
                );
                if sub == 0 {
                    break;
                }
                sub = (sub - 1) & mask;
            }
            out.push(acc);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{perm_naive, perm_streaming};
    use agq_semiring::{MinPlus, Nat};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(k: usize, n: usize, seed: u64) -> ColMatrix<Nat> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut m = ColMatrix::new(k);
        for _ in 0..n {
            let col: Vec<Nat> = (0..k).map(|_| Nat(rng.gen_range(0..4))).collect();
            m.push_col(&col);
        }
        m
    }

    #[test]
    fn build_matches_streaming_various_sizes() {
        for k in 1..=4 {
            for n in [1usize, 2, 3, 5, 8, 13] {
                let m = random_matrix(k, n, (k * 1000 + n) as u64);
                let tree = SegTreePerm::build(m.clone());
                assert_eq!(tree.total(), &perm_streaming(&m), "k={k} n={n}");
            }
        }
    }

    #[test]
    fn updates_track_naive() {
        let mut rng = SmallRng::seed_from_u64(11);
        let m = random_matrix(3, 10, 2);
        let mut tree = SegTreePerm::build(m.clone());
        let mut shadow = m;
        for _ in 0..60 {
            let r = rng.gen_range(0..3);
            let c = rng.gen_range(0..10);
            let v = Nat(rng.gen_range(0..4));
            tree.update(r, c, v);
            shadow.set(r, c, v);
            assert_eq!(tree.total(), &perm_naive(&shadow));
        }
    }

    #[test]
    fn minplus_updates() {
        let mut m = ColMatrix::new(2);
        for w in [3u64, 1, 4, 1, 5] {
            m.push_col(&[MinPlus(w), MinPlus(w + 1)]);
        }
        let mut tree = SegTreePerm::build(m.clone());
        assert_eq!(tree.total(), &perm_naive(&m));
        tree.update(0, 2, MinPlus::INF);
        m.set(0, 2, MinPlus::INF);
        assert_eq!(tree.total(), &perm_naive(&m));
    }

    #[test]
    fn peek_with_restores_state() {
        let m = random_matrix(2, 6, 9);
        let mut tree = SegTreePerm::build(m.clone());
        let before = *tree.total();
        let peeked = tree.peek_with(&[(0, 0, Nat(0)), (1, 3, Nat(7))]);
        let mut shadow = m;
        shadow.set(0, 0, Nat(0));
        shadow.set(1, 3, Nat(7));
        assert_eq!(peeked, perm_naive(&shadow));
        assert_eq!(tree.total(), &before, "peek must restore");
    }

    #[test]
    fn single_column_tree() {
        let m = random_matrix(1, 1, 5);
        let tree = SegTreePerm::build(m.clone());
        assert_eq!(tree.total(), &perm_naive(&m));
    }
}
