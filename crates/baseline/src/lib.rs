//! Baselines: system **S10**. Reference implementations with the obvious
//! complexity, used as (a) correctness oracles for differential testing
//! of the whole pipeline and (b) the comparison points of the experiment
//! suite ("who wins, by what factor, where is the crossover").

use agq_logic::{Expr, Formula, Var};
use agq_semiring::Semiring;
use agq_structure::fx::FxHashMap;
use agq_structure::{Elem, Structure, WeightedStructure};

/// Evaluate a first-order formula under an assignment by brute force
/// (`O(n^quantifiers)` with the naive quantifier loop).
pub fn eval_formula(f: &Formula, a: &Structure, env: &mut FxHashMap<Var, Elem>) -> bool {
    match f {
        Formula::True => true,
        Formula::False => false,
        Formula::Rel(r, args) => {
            let tuple: Vec<Elem> = args.iter().map(|v| env[v]).collect();
            a.holds(*r, &tuple)
        }
        Formula::Eq(x, y) => env[x] == env[y],
        Formula::Not(g) => !eval_formula(g, a, env),
        Formula::And(fs) => fs.iter().all(|g| eval_formula(g, a, env)),
        Formula::Or(fs) => fs.iter().any(|g| eval_formula(g, a, env)),
        Formula::Exists(v, g) => {
            let saved = env.get(v).copied();
            let mut found = false;
            for e in 0..a.domain_size() as Elem {
                env.insert(*v, e);
                if eval_formula(g, a, env) {
                    found = true;
                    break;
                }
            }
            restore(env, *v, saved);
            found
        }
        Formula::Forall(v, g) => {
            let saved = env.get(v).copied();
            let mut all = true;
            for e in 0..a.domain_size() as Elem {
                env.insert(*v, e);
                if !eval_formula(g, a, env) {
                    all = false;
                    break;
                }
            }
            restore(env, *v, saved);
            all
        }
    }
}

fn restore(env: &mut FxHashMap<Var, Elem>, v: Var, saved: Option<Elem>) {
    match saved {
        Some(e) => {
            env.insert(v, e);
        }
        None => {
            env.remove(&v);
        }
    }
}

/// Evaluate a weighted expression under an assignment by brute force:
/// every `Σ_x` is a loop over the whole domain (`O(n^vars)`).
pub fn eval_expr<S: Semiring>(
    e: &Expr<S>,
    w: &WeightedStructure<S>,
    env: &mut FxHashMap<Var, Elem>,
) -> S {
    match e {
        Expr::Const(s) => s.clone(),
        Expr::Weight(wid, args) => {
            let tuple: Vec<Elem> = args.iter().map(|v| env[v]).collect();
            w.get(*wid, &tuple)
        }
        Expr::Bracket(f) => {
            if eval_formula(f, w.structure(), env) {
                S::one()
            } else {
                S::zero()
            }
        }
        Expr::Add(es) => {
            let mut acc = S::zero();
            for x in es {
                acc.add_assign(&eval_expr(x, w, env));
            }
            acc
        }
        Expr::Mul(es) => {
            let mut acc = S::one();
            for x in es {
                acc.mul_assign(&eval_expr(x, w, env));
            }
            acc
        }
        Expr::Sum(vars, inner) => sum_rec(vars, 0, inner, w, env),
    }
}

fn sum_rec<S: Semiring>(
    vars: &[Var],
    i: usize,
    inner: &Expr<S>,
    w: &WeightedStructure<S>,
    env: &mut FxHashMap<Var, Elem>,
) -> S {
    if i == vars.len() {
        return eval_expr(inner, w, env);
    }
    let v = vars[i];
    let saved = env.get(&v).copied();
    let mut acc = S::zero();
    for e in 0..w.structure().domain_size() as Elem {
        env.insert(v, e);
        acc.add_assign(&sum_rec(vars, i + 1, inner, w, env));
    }
    restore(env, v, saved);
    acc
}

/// Evaluate a closed expression by brute force.
pub fn eval_closed<S: Semiring>(e: &Expr<S>, w: &WeightedStructure<S>) -> S {
    let mut env = FxHashMap::default();
    eval_expr(e, w, &mut env)
}

/// Evaluate an expression with free variables at a tuple (positions follow
/// the sorted free-variable order, matching `CompiledQuery::free_vars`).
pub fn eval_at<S: Semiring>(
    e: &Expr<S>,
    w: &WeightedStructure<S>,
    free_vars: &[Var],
    tuple: &[Elem],
) -> S {
    assert_eq!(free_vars.len(), tuple.len());
    let mut env = FxHashMap::default();
    for (v, &a) in free_vars.iter().zip(tuple) {
        env.insert(*v, a);
    }
    eval_expr(e, w, &mut env)
}

/// Materialize all answers of a first-order formula by brute force,
/// in lexicographic tuple order — the enumeration baseline of E9.
pub fn all_answers(f: &Formula, a: &Structure) -> Vec<Vec<Elem>> {
    let free = f.free_vars();
    let mut env = FxHashMap::default();
    let mut out = Vec::new();
    let mut tuple = vec![0 as Elem; free.len()];
    answers_rec(f, a, &free, 0, &mut tuple, &mut env, &mut out);
    out
}

fn answers_rec(
    f: &Formula,
    a: &Structure,
    free: &[Var],
    i: usize,
    tuple: &mut Vec<Elem>,
    env: &mut FxHashMap<Var, Elem>,
    out: &mut Vec<Vec<Elem>>,
) {
    if i == free.len() {
        if eval_formula(f, a, env) {
            out.push(tuple.clone());
        }
        return;
    }
    for e in 0..a.domain_size() as Elem {
        env.insert(free[i], e);
        tuple[i] = e;
        answers_rec(f, a, free, i + 1, tuple, env, out);
    }
    env.remove(&free[i]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use agq_semiring::Nat;
    use agq_structure::Signature;
    use std::sync::Arc;

    fn path_structure(n: usize) -> Arc<Structure> {
        let mut sig = Signature::new();
        let e = sig.add_relation("E", 2);
        sig.add_weight("w", 1);
        let mut a = Structure::new(Arc::new(sig), n);
        for i in 1..n as u32 {
            a.insert(e, &[i - 1, i]);
        }
        Arc::new(a)
    }

    #[test]
    fn counts_edges() {
        let a = path_structure(5);
        let e = a.signature().relation("E").unwrap();
        let x = Var(0);
        let y = Var(1);
        let expr: Expr<Nat> = Expr::Bracket(Formula::Rel(e, vec![x, y])).sum_over([x, y]);
        let w = WeightedStructure::new(a);
        assert_eq!(eval_closed(&expr, &w), Nat(4));
    }

    #[test]
    fn weighted_sum() {
        let a = path_structure(4);
        let wsym = a.signature().weight("w").unwrap();
        let mut w: WeightedStructure<Nat> = WeightedStructure::new(a);
        for i in 0..4u32 {
            w.set(wsym, &[i], Nat(i as u64 + 1));
        }
        let x = Var(0);
        let expr = Expr::Weight(wsym, vec![x]).sum_over([x]);
        assert_eq!(eval_closed(&expr, &w), Nat(10));
    }

    #[test]
    fn quantifier_evaluation() {
        let a = path_structure(4);
        let e = a.signature().relation("E").unwrap();
        let x = Var(0);
        let y = Var(1);
        // ∃y E(x,y): holds for 0,1,2 (not 3)
        let f = Formula::Exists(y, Box::new(Formula::Rel(e, vec![x, y])));
        let mut env = FxHashMap::default();
        let mut holds = Vec::new();
        for v in 0..4u32 {
            env.insert(x, v);
            if eval_formula(&f, &a, &mut env) {
                holds.push(v);
            }
        }
        assert_eq!(holds, vec![0, 1, 2]);
    }

    #[test]
    fn all_answers_of_edges() {
        let a = path_structure(3);
        let e = a.signature().relation("E").unwrap();
        let f = Formula::Rel(e, vec![Var(0), Var(1)]);
        let ans = all_answers(&f, &a);
        assert_eq!(ans, vec![vec![0, 1], vec![1, 2]]);
    }
}
