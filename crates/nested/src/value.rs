//! Dynamically-typed semiring values and multi-semiring weight stores.

use agq_semiring::{Bool, Int, MaxF, MinPlus, Nat, Rat, Semiring};
use agq_structure::fx::FxHashMap;
use agq_structure::{Elem, Structure, Tuple, WeightId, WeightedStructure};
use std::fmt;
use std::sync::Arc;

/// The semirings available to nested queries (the collection `C`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SemiringTag {
    /// Boolean semiring `B`.
    B,
    /// Counting semiring `(ℕ, +, ·)`.
    N,
    /// Ring of integers `(ℤ, +, ·)`.
    Z,
    /// Field of rationals `(ℚ, +, ·)`.
    Q,
    /// Tropical `(ℕ ∪ {∞}, min, +)`.
    MinPlus,
    /// Real arctic `(ℝ ∪ {−∞}, max, +)` (the paper's `Qmax`).
    MaxF,
}

/// A value in one of the supported semirings.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Value {
    /// Boolean.
    B(Bool),
    /// Natural number.
    N(Nat),
    /// Integer.
    Z(Int),
    /// Exact rational.
    Q(Rat),
    /// Tropical.
    MinPlus(MinPlus),
    /// Real arctic.
    MaxF(MaxF),
}

impl Value {
    /// The value's semiring.
    pub fn tag(&self) -> SemiringTag {
        match self {
            Value::B(_) => SemiringTag::B,
            Value::N(_) => SemiringTag::N,
            Value::Z(_) => SemiringTag::Z,
            Value::Q(_) => SemiringTag::Q,
            Value::MinPlus(_) => SemiringTag::MinPlus,
            Value::MaxF(_) => SemiringTag::MaxF,
        }
    }

    /// The zero of a tagged semiring.
    pub fn zero(tag: SemiringTag) -> Value {
        match tag {
            SemiringTag::B => Value::B(Bool::zero()),
            SemiringTag::N => Value::N(Nat::zero()),
            SemiringTag::Z => Value::Z(Int::zero()),
            SemiringTag::Q => Value::Q(Rat::zero()),
            SemiringTag::MinPlus => Value::MinPlus(MinPlus::zero()),
            SemiringTag::MaxF => Value::MaxF(MaxF::zero()),
        }
    }

    /// The one of a tagged semiring.
    pub fn one(tag: SemiringTag) -> Value {
        match tag {
            SemiringTag::B => Value::B(Bool::one()),
            SemiringTag::N => Value::N(Nat::one()),
            SemiringTag::Z => Value::Z(Int::one()),
            SemiringTag::Q => Value::Q(Rat::one()),
            SemiringTag::MinPlus => Value::MinPlus(MinPlus::one()),
            SemiringTag::MaxF => Value::MaxF(MaxF::one()),
        }
    }

    /// Semiring addition (tags must match).
    pub fn add(&self, rhs: &Value) -> Value {
        match (self, rhs) {
            (Value::B(a), Value::B(b)) => Value::B(a.add(b)),
            (Value::N(a), Value::N(b)) => Value::N(a.add(b)),
            (Value::Z(a), Value::Z(b)) => Value::Z(a.add(b)),
            (Value::Q(a), Value::Q(b)) => Value::Q(a.add(b)),
            (Value::MinPlus(a), Value::MinPlus(b)) => Value::MinPlus(a.add(b)),
            (Value::MaxF(a), Value::MaxF(b)) => Value::MaxF(a.add(b)),
            _ => panic!("tag mismatch in Value::add: {self:?} + {rhs:?}"),
        }
    }

    /// Semiring multiplication (tags must match).
    pub fn mul(&self, rhs: &Value) -> Value {
        match (self, rhs) {
            (Value::B(a), Value::B(b)) => Value::B(a.mul(b)),
            (Value::N(a), Value::N(b)) => Value::N(a.mul(b)),
            (Value::Z(a), Value::Z(b)) => Value::Z(a.mul(b)),
            (Value::Q(a), Value::Q(b)) => Value::Q(a.mul(b)),
            (Value::MinPlus(a), Value::MinPlus(b)) => Value::MinPlus(a.mul(b)),
            (Value::MaxF(a), Value::MaxF(b)) => Value::MaxF(a.mul(b)),
            _ => panic!("tag mismatch in Value::mul: {self:?} · {rhs:?}"),
        }
    }

    /// Whether the value is its semiring's zero.
    pub fn is_zero(&self) -> bool {
        match self {
            Value::B(a) => a.is_zero(),
            Value::N(a) => a.is_zero(),
            Value::Z(a) => a.is_zero(),
            Value::Q(a) => a.is_zero(),
            Value::MinPlus(a) => a.is_zero(),
            Value::MaxF(a) => a.is_zero(),
        }
    }

    /// Extract a Boolean (panics on other tags).
    pub fn as_bool(&self) -> bool {
        match self {
            Value::B(b) => b.0,
            _ => panic!("expected Boolean value, got {self:?}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::B(v) => write!(f, "{v}"),
            Value::N(v) => write!(f, "{v}"),
            Value::Z(v) => write!(f, "{v}"),
            Value::Q(v) => write!(f, "{v}"),
            Value::MinPlus(v) => write!(f, "{v}"),
            Value::MaxF(v) => write!(f, "{v}"),
        }
    }
}

/// A concrete semiring usable in nested queries: conversion to/from
/// [`Value`] plus its tag.
pub trait ValueCarrier: Semiring {
    /// This semiring's tag.
    const TAG: SemiringTag;
    /// Downcast (None on tag mismatch).
    fn from_value(v: &Value) -> Option<Self>;
    /// Upcast.
    fn to_value(&self) -> Value;
}

macro_rules! carrier {
    ($ty:ty, $variant:ident) => {
        impl ValueCarrier for $ty {
            const TAG: SemiringTag = SemiringTag::$variant;
            fn from_value(v: &Value) -> Option<Self> {
                match v {
                    Value::$variant(x) => Some(*x),
                    _ => None,
                }
            }
            fn to_value(&self) -> Value {
                Value::$variant(*self)
            }
        }
    };
}

carrier!(Bool, B);
carrier!(Nat, N);
carrier!(Int, Z);
carrier!(Rat, Q);
carrier!(MinPlus, MinPlus);
carrier!(MaxF, MaxF);

/// Weights in several semirings at once: the `S`-relations of a
/// `C`-signature (Section 7). Zero-valued entries are absent.
#[derive(Clone, Debug, Default)]
pub struct MultiWeights {
    entries: FxHashMap<(WeightId, Tuple), Value>,
}

impl MultiWeights {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set `w(t̄) := v` (zero values clear the entry).
    pub fn set(&mut self, w: WeightId, t: &[Elem], v: Value) {
        let key = (w, Tuple::new(t));
        if v.is_zero() {
            self.entries.remove(&key);
        } else {
            self.entries.insert(key, v);
        }
    }

    /// Read `w(t̄)`, defaulting to the zero of `tag`.
    pub fn get(&self, w: WeightId, t: &[Elem], tag: SemiringTag) -> Value {
        self.entries
            .get(&(w, Tuple::new(t)))
            .copied()
            .unwrap_or_else(|| Value::zero(tag))
    }

    /// Project the entries of one semiring into a typed weighted
    /// structure over `a` (entries of other tags are ignored — the type
    /// checker guarantees a stratum only reads its own).
    pub fn project<S: ValueCarrier>(&self, a: &Arc<Structure>) -> WeightedStructure<S> {
        let mut out = WeightedStructure::new(a.clone());
        for ((w, t), v) in &self.entries {
            if let Some(x) = S::from_value(v) {
                // Skip symbols that the (possibly extended) signature does
                // not know or whose arity mismatches — defensive: the
                // evaluator constructs consistent stores.
                let sig = a.signature();
                if (w.0 as usize) < sig.num_weights() && sig.weight_arity(*w) == t.len() {
                    out.set(*w, t.as_slice(), x);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_algebra_dispatches() {
        assert_eq!(Value::N(Nat(2)).add(&Value::N(Nat(3))), Value::N(Nat(5)));
        assert_eq!(
            Value::MinPlus(MinPlus(2)).mul(&Value::MinPlus(MinPlus(3))),
            Value::MinPlus(MinPlus(5))
        );
        assert!(Value::zero(SemiringTag::Q).is_zero());
        assert!(Value::one(SemiringTag::B).as_bool());
    }

    #[test]
    #[should_panic(expected = "tag mismatch")]
    fn mixed_tags_panic() {
        let _ = Value::N(Nat(1)).add(&Value::Z(Int(1)));
    }

    #[test]
    fn carrier_roundtrip() {
        let v = Value::Q(Rat::new(3, 4));
        assert_eq!(Rat::from_value(&v), Some(Rat::new(3, 4)));
        assert_eq!(Nat::from_value(&v), None);
        assert_eq!(Rat::new(3, 4).to_value(), v);
    }
}
