//! The syntax of `FOG[C]`: semiring-typed formulas with guarded
//! connectives.

use crate::value::{SemiringTag, Value};
use agq_logic::Var;
use agq_structure::{RelId, WeightId};
use std::fmt;
use std::sync::Arc;

/// Shared connective function type.
pub type ConnectiveFn = Arc<dyn Fn(&[Value]) -> Value + Send + Sync>;

/// A connective `c : S₁ × ⋯ × S_k → S` of the collection `C`.
#[derive(Clone)]
pub struct Connective {
    /// Human-readable name (diagnostics).
    pub name: String,
    /// Argument semirings.
    pub inputs: Vec<SemiringTag>,
    /// Output semiring.
    pub output: SemiringTag,
    /// The function itself.
    pub apply: ConnectiveFn,
}

impl fmt::Debug for Connective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Connective({})", self.name)
    }
}

impl Connective {
    /// Build a connective from a closure.
    pub fn new(
        name: &str,
        inputs: Vec<SemiringTag>,
        output: SemiringTag,
        apply: impl Fn(&[Value]) -> Value + Send + Sync + 'static,
    ) -> Self {
        Connective {
            name: name.to_owned(),
            inputs,
            output,
            apply: Arc::new(apply),
        }
    }
}

/// An `FOG[C]` formula. Every formula has an output semiring, computed by
/// [`NestedFormula::tag`].
#[derive(Clone, Debug)]
pub enum NestedFormula {
    /// A classical (Boolean) relation atom `R(x̄)`.
    Rel(RelId, Vec<Var>),
    /// Equality `x = y` (Boolean).
    Eq(Var, Var),
    /// An `S`-relation atom: a weight symbol with declared value semiring.
    SAtom {
        /// The weight symbol.
        weight: WeightId,
        /// Its value semiring.
        tag: SemiringTag,
        /// Argument variables.
        args: Vec<Var>,
    },
    /// A constant.
    Const(Value),
    /// `φ₁ + φ₂ + …` (∨ in `B`).
    Add(Vec<NestedFormula>),
    /// `φ₁ · φ₂ · …` (∧ in `B`).
    Mul(Vec<NestedFormula>),
    /// `Σ_x̄ φ` (∃ in `B`).
    Sum(Vec<Var>, Box<NestedFormula>),
    /// `¬φ` (Boolean only).
    Not(Box<NestedFormula>),
    /// `[φ]_S` — transport a Boolean formula into semiring `S`.
    Bracket(Box<NestedFormula>, SemiringTag),
    /// The guarded connective `[R(x̄)]_S · c(φ¹, …, φ^k)` — the defining
    /// construct of `FOG[C]`: the guard's variables must cover the free
    /// variables of every argument.
    Guarded {
        /// The Boolean guard relation.
        guard: RelId,
        /// Guard argument variables (pairwise distinct).
        guard_args: Vec<Var>,
        /// The connective.
        connective: Connective,
        /// Argument formulas (typed by `connective.inputs`).
        args: Vec<NestedFormula>,
    },
}

/// Type errors for `FOG[C]` formulas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// Children of `Add`/`Mul`/… disagree on semirings.
    TagMismatch {
        /// What was expected.
        expected: SemiringTag,
        /// What was found.
        found: SemiringTag,
        /// Where.
        context: String,
    },
    /// `Not`/`Bracket` applied to a non-Boolean formula.
    NotBoolean {
        /// Where.
        context: String,
    },
    /// A guarded connective whose arguments have free variables outside
    /// the guard.
    Unguarded {
        /// Offending variable.
        var: u32,
        /// Connective name.
        connective: String,
    },
    /// Guard arguments repeat a variable.
    GuardNotDistinct,
    /// Connective arity mismatch.
    ConnectiveArity {
        /// Connective name.
        connective: String,
    },
    /// Empty `Add`/`Mul` has no inferable type.
    EmptyCombination,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::TagMismatch {
                expected,
                found,
                context,
            } => write!(
                f,
                "type mismatch in {context}: expected {expected:?}, found {found:?}"
            ),
            TypeError::NotBoolean { context } => {
                write!(f, "{context} requires a Boolean operand")
            }
            TypeError::Unguarded { var, connective } => write!(
                f,
                "free variable x{var} of a {connective}-argument is not covered \
                 by the guard (outside FOG[C])"
            ),
            TypeError::GuardNotDistinct => write!(f, "guard variables must be distinct"),
            TypeError::ConnectiveArity { connective } => {
                write!(f, "connective {connective} applied to wrong arity")
            }
            TypeError::EmptyCombination => write!(f, "empty +/· has no type"),
        }
    }
}

impl std::error::Error for TypeError {}

impl NestedFormula {
    /// Infer the output semiring, verifying `FOG[C]` typing rules.
    pub fn tag(&self) -> Result<SemiringTag, TypeError> {
        match self {
            NestedFormula::Rel(..) | NestedFormula::Eq(..) => Ok(SemiringTag::B),
            NestedFormula::SAtom { tag, .. } => Ok(*tag),
            NestedFormula::Const(v) => Ok(v.tag()),
            NestedFormula::Add(fs) | NestedFormula::Mul(fs) => {
                let mut it = fs.iter();
                let first = it.next().ok_or(TypeError::EmptyCombination)?.tag()?;
                for f in it {
                    let t = f.tag()?;
                    if t != first {
                        return Err(TypeError::TagMismatch {
                            expected: first,
                            found: t,
                            context: "+/·".into(),
                        });
                    }
                }
                Ok(first)
            }
            NestedFormula::Sum(_, f) => f.tag(),
            NestedFormula::Not(f) => {
                if f.tag()? != SemiringTag::B {
                    return Err(TypeError::NotBoolean {
                        context: "negation".into(),
                    });
                }
                Ok(SemiringTag::B)
            }
            NestedFormula::Bracket(f, tag) => {
                if f.tag()? != SemiringTag::B {
                    return Err(TypeError::NotBoolean {
                        context: "Iverson bracket".into(),
                    });
                }
                Ok(*tag)
            }
            NestedFormula::Guarded {
                guard_args,
                connective,
                args,
                ..
            } => {
                let mut distinct = guard_args.clone();
                distinct.sort_unstable();
                distinct.dedup();
                if distinct.len() != guard_args.len() {
                    return Err(TypeError::GuardNotDistinct);
                }
                if connective.inputs.len() != args.len() {
                    return Err(TypeError::ConnectiveArity {
                        connective: connective.name.clone(),
                    });
                }
                for (expected, arg) in connective.inputs.iter().zip(args) {
                    let t = arg.tag()?;
                    if t != *expected {
                        return Err(TypeError::TagMismatch {
                            expected: *expected,
                            found: t,
                            context: format!("argument of {}", connective.name),
                        });
                    }
                    for v in arg.free_vars() {
                        if !guard_args.contains(&v) {
                            return Err(TypeError::Unguarded {
                                var: v.0,
                                connective: connective.name.clone(),
                            });
                        }
                    }
                }
                Ok(connective.output)
            }
        }
    }

    /// Free variables.
    pub fn free_vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        self.free_into(&mut Vec::new(), &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn free_into(&self, bound: &mut Vec<Var>, out: &mut Vec<Var>) {
        match self {
            NestedFormula::Rel(_, args) | NestedFormula::SAtom { args, .. } => {
                out.extend(args.iter().filter(|v| !bound.contains(v)));
            }
            NestedFormula::Eq(a, b) => {
                for v in [a, b] {
                    if !bound.contains(v) {
                        out.push(*v);
                    }
                }
            }
            NestedFormula::Const(_) => {}
            NestedFormula::Add(fs) | NestedFormula::Mul(fs) => {
                for f in fs {
                    f.free_into(bound, out);
                }
            }
            NestedFormula::Sum(vs, f) => {
                let depth = bound.len();
                bound.extend(vs.iter().copied());
                f.free_into(bound, out);
                bound.truncate(depth);
            }
            NestedFormula::Not(f) | NestedFormula::Bracket(f, _) => f.free_into(bound, out),
            NestedFormula::Guarded {
                guard_args, args, ..
            } => {
                out.extend(guard_args.iter().filter(|v| !bound.contains(v)));
                for f in args {
                    f.free_into(bound, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agq_semiring::Nat;

    fn count_conn() -> Connective {
        Connective::new(
            "lt",
            vec![SemiringTag::N, SemiringTag::N],
            SemiringTag::B,
            |vals| match (&vals[0], &vals[1]) {
                (Value::N(a), Value::N(b)) => Value::B(agq_semiring::Bool(a.0 < b.0)),
                _ => unreachable!(),
            },
        )
    }

    #[test]
    fn typing_accepts_guarded() {
        let f = NestedFormula::Guarded {
            guard: RelId(0),
            guard_args: vec![Var(0), Var(1)],
            connective: count_conn(),
            args: vec![
                NestedFormula::Const(Value::N(Nat(1))),
                NestedFormula::Sum(
                    vec![Var(2)],
                    Box::new(NestedFormula::Bracket(
                        Box::new(NestedFormula::Rel(RelId(0), vec![Var(1), Var(2)])),
                        SemiringTag::N,
                    )),
                ),
            ],
        };
        assert_eq!(f.tag().unwrap(), SemiringTag::B);
        assert_eq!(f.free_vars(), vec![Var(0), Var(1)]);
    }

    #[test]
    fn typing_rejects_unguarded() {
        let f = NestedFormula::Guarded {
            guard: RelId(0),
            guard_args: vec![Var(0)],
            connective: count_conn(),
            args: vec![
                NestedFormula::Const(Value::N(Nat(1))),
                // free variable x5 not covered by the guard
                NestedFormula::SAtom {
                    weight: WeightId(0),
                    tag: SemiringTag::N,
                    args: vec![Var(5)],
                },
            ],
        };
        assert!(matches!(f.tag(), Err(TypeError::Unguarded { var: 5, .. })));
    }

    #[test]
    fn typing_rejects_mixed_addition() {
        let f = NestedFormula::Add(vec![
            NestedFormula::Const(Value::N(Nat(1))),
            NestedFormula::Const(Value::Z(agq_semiring::Int(1))),
        ]);
        assert!(matches!(f.tag(), Err(TypeError::TagMismatch { .. })));
    }
}
