//! Theorem 26: evaluation of `FOG[C]` by stratified materialization.

use crate::convert::{to_expr, to_fo_formula};
use crate::formula::{NestedFormula, TypeError};
use crate::value::{MultiWeights, SemiringTag, Value, ValueCarrier};
use agq_core::{
    compile, eliminate_quantifiers, CompileError, CompileOptions, FiniteEngine, GeneralEngine,
    QueryEngine, RingEngine,
};
use agq_logic::{normalize, Expr, Var};
use agq_semiring::{Bool, Int, MaxF, MinPlus, Nat, Rat};
use agq_structure::{Elem, Signature, Structure, Tuple};
use std::fmt;
use std::sync::Arc;

/// Errors from nested-query evaluation.
#[derive(Debug)]
pub enum NestedError {
    /// `FOG[C]` typing violation.
    Type(TypeError),
    /// Compilation failure of a stratum.
    Compile(CompileError),
}

impl fmt::Display for NestedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NestedError::Type(e) => write!(f, "{e}"),
            NestedError::Compile(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for NestedError {}

impl From<TypeError> for NestedError {
    fn from(e: TypeError) -> Self {
        NestedError::Type(e)
    }
}

impl From<CompileError> for NestedError {
    fn from(e: CompileError) -> Self {
        NestedError::Compile(e)
    }
}

/// One Theorem 8 engine, dynamically tagged. Rings get constant-time
/// engines, `B` the finite-semiring engine, the rest the general
/// (logarithmic) one — exactly the case split of Theorem 26's statement.
enum AnyEngine {
    B(FiniteEngine<Bool>),
    N(GeneralEngine<Nat>),
    Z(RingEngine<Int>),
    Q(RingEngine<Rat>),
    MinPlus(GeneralEngine<MinPlus>),
    MaxF(GeneralEngine<MaxF>),
}

impl AnyEngine {
    fn value(&self) -> Value {
        match self {
            AnyEngine::B(e) => e.value().to_value(),
            AnyEngine::N(e) => e.value().to_value(),
            AnyEngine::Z(e) => e.value().to_value(),
            AnyEngine::Q(e) => e.value().to_value(),
            AnyEngine::MinPlus(e) => e.value().to_value(),
            AnyEngine::MaxF(e) => e.value().to_value(),
        }
    }

    fn query(&mut self, t: &[Elem]) -> Value {
        match self {
            AnyEngine::B(e) => e.query(t).to_value(),
            AnyEngine::N(e) => e.query(t).to_value(),
            AnyEngine::Z(e) => e.query(t).to_value(),
            AnyEngine::Q(e) => e.query(t).to_value(),
            AnyEngine::MinPlus(e) => e.query(t).to_value(),
            AnyEngine::MaxF(e) => e.query(t).to_value(),
        }
    }

    fn free_vars(&self) -> &[Var] {
        match self {
            AnyEngine::B(e) => &e.compiled().free_vars,
            AnyEngine::N(e) => &e.compiled().free_vars,
            AnyEngine::Z(e) => &e.compiled().free_vars,
            AnyEngine::Q(e) => &e.compiled().free_vars,
            AnyEngine::MinPlus(e) => &e.compiled().free_vars,
            AnyEngine::MaxF(e) => &e.compiled().free_vars,
        }
    }
}

fn build_typed<S: ValueCarrier, P: agq_circuit::PermMaint<S>>(
    a: &Structure,
    mw: &MultiWeights,
    expr: &Expr<S>,
    opts: &CompileOptions,
) -> Result<QueryEngine<S, P>, NestedError> {
    let (expr, a2) = eliminate_quantifiers(expr, a, opts)?;
    let nf = normalize(&expr).map_err(CompileError::from)?;
    let compiled = compile(&a2, &nf, opts)?;
    let weights = mw.project::<S>(&a2);
    Ok(QueryEngine::new(compiled, &weights))
}

fn build_engine(
    tag: SemiringTag,
    a: &Structure,
    mw: &MultiWeights,
    f: &NestedFormula,
    opts: &CompileOptions,
) -> Result<AnyEngine, NestedError> {
    Ok(match tag {
        SemiringTag::B => {
            let fo = to_fo_formula(f)?;
            let expr: Expr<Bool> = Expr::Bracket(fo);
            AnyEngine::B(build_typed(a, mw, &expr, opts)?)
        }
        SemiringTag::N => AnyEngine::N(build_typed(a, mw, &to_expr::<Nat>(f)?, opts)?),
        SemiringTag::Z => AnyEngine::Z(build_typed(a, mw, &to_expr::<Int>(f)?, opts)?),
        SemiringTag::Q => AnyEngine::Q(build_typed(a, mw, &to_expr::<Rat>(f)?, opts)?),
        SemiringTag::MinPlus => {
            AnyEngine::MinPlus(build_typed(a, mw, &to_expr::<MinPlus>(f)?, opts)?)
        }
        SemiringTag::MaxF => AnyEngine::MaxF(build_typed(a, mw, &to_expr::<MaxF>(f)?, opts)?),
    })
}

struct LowerState {
    a: Structure,
    weights: MultiWeights,
    opts: CompileOptions,
    fresh: u32,
}

impl LowerState {
    fn fresh_weight(&mut self, arity: usize) -> agq_structure::WeightId {
        let mut sig = (**self.a.signature()).clone();
        let w = sig.add_weight(&format!("__conn{}", self.fresh), arity);
        self.fresh += 1;
        self.a = rebuild(&self.a, Arc::new(sig));
        w
    }

    fn fresh_relation(&mut self, arity: usize) -> agq_structure::RelId {
        let mut sig = (**self.a.signature()).clone();
        let r = sig.add_relation(&format!("__connR{}", self.fresh), arity);
        self.fresh += 1;
        self.a = rebuild(&self.a, Arc::new(sig));
        r
    }
}

fn rebuild(a: &Structure, sig: Arc<Signature>) -> Structure {
    let mut b = Structure::new(sig, a.domain_size());
    for r in a.signature().relation_ids() {
        for t in a.relation(r).iter() {
            b.insert(r, t.as_slice());
        }
    }
    b
}

/// Replace every guarded connective (innermost first) by a materialized
/// weight symbol / relation — the inductive step in the proof of
/// Theorem 26.
fn lower(f: &NestedFormula, st: &mut LowerState) -> Result<NestedFormula, NestedError> {
    Ok(match f {
        NestedFormula::Rel(..)
        | NestedFormula::Eq(..)
        | NestedFormula::SAtom { .. }
        | NestedFormula::Const(_) => f.clone(),
        NestedFormula::Add(fs) => {
            NestedFormula::Add(fs.iter().map(|g| lower(g, st)).collect::<Result<_, _>>()?)
        }
        NestedFormula::Mul(fs) => {
            NestedFormula::Mul(fs.iter().map(|g| lower(g, st)).collect::<Result<_, _>>()?)
        }
        NestedFormula::Sum(vs, g) => NestedFormula::Sum(vs.clone(), Box::new(lower(g, st)?)),
        NestedFormula::Not(g) => NestedFormula::Not(Box::new(lower(g, st)?)),
        NestedFormula::Bracket(g, tag) => NestedFormula::Bracket(Box::new(lower(g, st)?), *tag),
        NestedFormula::Guarded {
            guard,
            guard_args,
            connective,
            args,
        } => {
            // Arguments first (they may contain nested connectives).
            let args: Vec<NestedFormula> = args
                .iter()
                .map(|g| lower(g, st))
                .collect::<Result<_, _>>()?;
            // One Theorem 8 evaluator per argument, each with its free
            // variables among the guard's.
            let mut engines: Vec<(AnyEngine, Vec<usize>)> = Vec::with_capacity(args.len());
            for (g, tag) in args.iter().zip(&connective.inputs) {
                let engine = build_engine(*tag, &st.a, &st.weights, g, &st.opts)?;
                // map engine free-var order to guard positions
                let positions: Vec<usize> = engine
                    .free_vars()
                    .iter()
                    .map(|v| {
                        guard_args
                            .iter()
                            .position(|gv| gv == v)
                            .expect("typing guarantees guardedness")
                    })
                    .collect();
                engines.push((engine, positions));
            }
            // Scan the (linearly many) guard tuples and apply the
            // connective to the precomputed argument values.
            let tuples: Vec<Tuple> = st.a.relation(*guard).iter().cloned().collect();
            let arity = guard_args.len();
            if connective.output == SemiringTag::B {
                let rel = st.fresh_relation(arity);
                for t in &tuples {
                    let vals = query_all(&mut engines, t);
                    if (connective.apply)(&vals).as_bool() {
                        st.a.insert(rel, t.as_slice());
                    }
                }
                NestedFormula::Rel(rel, guard_args.clone())
            } else {
                let w = st.fresh_weight(arity);
                for t in &tuples {
                    let vals = query_all(&mut engines, t);
                    let v = (connective.apply)(&vals);
                    debug_assert_eq!(v.tag(), connective.output, "connective output tag");
                    st.weights.set(w, t.as_slice(), v);
                }
                NestedFormula::SAtom {
                    weight: w,
                    tag: connective.output,
                    args: guard_args.clone(),
                }
            }
        }
    })
}

fn query_all(engines: &mut [(AnyEngine, Vec<usize>)], t: &Tuple) -> Vec<Value> {
    engines
        .iter_mut()
        .map(|(e, positions)| {
            let sub: Vec<Elem> = positions.iter().map(|&p| t.as_slice()[p]).collect();
            e.query(&sub)
        })
        .collect()
}

/// A fully evaluated nested query: supports closed values and
/// free-variable point queries (Theorem 26's data structure).
pub struct NestedEvaluator {
    engine: AnyEngine,
    out_tag: SemiringTag,
    /// For Boolean outputs: the lowered first-order formula and extended
    /// structure, enabling Theorem 24 answer enumeration (result (E)).
    lowered_bool: Option<(agq_logic::Formula, Arc<Structure>)>,
}

/// Convenience alias for evaluation results.
pub type NestedResult = Value;

impl NestedEvaluator {
    /// Build the evaluation structure for `f` over `a` with weights `mw`.
    pub fn build(
        a: &Structure,
        mw: &MultiWeights,
        f: &NestedFormula,
        opts: &CompileOptions,
    ) -> Result<Self, NestedError> {
        let out_tag = f.tag()?;
        let mut st = LowerState {
            a: a.clone(),
            weights: mw.clone(),
            opts: opts.clone(),
            fresh: 0,
        };
        let lowered = lower(f, &mut st)?;
        let engine = build_engine(out_tag, &st.a, &st.weights, &lowered, &st.opts)?;
        let lowered_bool = if out_tag == SemiringTag::B {
            Some((to_fo_formula(&lowered)?, Arc::new(st.a.clone())))
        } else {
            None
        };
        Ok(NestedEvaluator {
            engine,
            out_tag,
            lowered_bool,
        })
    }

    /// The output semiring.
    pub fn output_tag(&self) -> SemiringTag {
        self.out_tag
    }

    /// The free variables in query order.
    pub fn free_vars(&self) -> &[Var] {
        self.engine.free_vars()
    }

    /// Value of a closed query.
    pub fn value(&self) -> Value {
        self.engine.value()
    }

    /// Value at a free-variable tuple: `O(log |A|)` in general, `O(1)`
    /// when the output semiring is a ring or finite.
    pub fn query(&mut self, t: &[Elem]) -> Value {
        self.engine.query(t)
    }

    /// Result (E): a constant-delay answer enumerator for Boolean-valued
    /// queries (the lowered formula over the extended structure).
    pub fn enumerate_answers(
        &self,
        opts: &CompileOptions,
    ) -> Result<agq_enumerate::AnswerIndex, NestedError> {
        let (formula, a) = self
            .lowered_bool
            .as_ref()
            .expect("enumerate_answers requires a Boolean-valued query");
        Ok(agq_enumerate::AnswerIndex::build(a, formula, opts)?)
    }
}
