//! Lowering connective-free `FOG[C]` formulas into the single-semiring
//! weighted expressions of `agq-logic`.

use crate::formula::{NestedFormula, TypeError};
use crate::value::{SemiringTag, ValueCarrier};
use agq_logic::{Expr, Formula};

/// Convert a Boolean-valued, guarded-connective-free formula into a plain
/// first-order formula. `Σ` becomes `∃` (summation in `B` is existential
/// quantification); Boolean `S`-atoms must already have been materialized
/// as relations by the evaluator.
pub fn to_fo_formula(f: &NestedFormula) -> Result<Formula, TypeError> {
    match f {
        NestedFormula::Rel(r, args) => Ok(Formula::Rel(*r, args.clone())),
        NestedFormula::Eq(a, b) => Ok(Formula::Eq(*a, *b)),
        NestedFormula::Const(v) => Ok(if v.as_bool() {
            Formula::True
        } else {
            Formula::False
        }),
        NestedFormula::Add(fs) => Ok(Formula::Or(
            fs.iter().map(to_fo_formula).collect::<Result<_, _>>()?,
        )),
        NestedFormula::Mul(fs) => Ok(Formula::And(
            fs.iter().map(to_fo_formula).collect::<Result<_, _>>()?,
        )),
        NestedFormula::Sum(vars, g) => {
            let mut out = to_fo_formula(g)?;
            for v in vars.iter().rev() {
                out = Formula::Exists(*v, Box::new(out));
            }
            Ok(out)
        }
        NestedFormula::Not(g) => Ok(Formula::Not(Box::new(to_fo_formula(g)?))),
        NestedFormula::Bracket(g, SemiringTag::B) => to_fo_formula(g),
        NestedFormula::Bracket(..) => Err(TypeError::NotBoolean {
            context: "non-Boolean bracket inside a Boolean formula".into(),
        }),
        NestedFormula::SAtom { tag, .. } => Err(TypeError::TagMismatch {
            expected: SemiringTag::B,
            found: *tag,
            context: "S-atom inside a Boolean formula (materialize first)".into(),
        }),
        NestedFormula::Guarded { connective, .. } => Err(TypeError::TagMismatch {
            expected: SemiringTag::B,
            found: connective.output,
            context: "guarded connective must be lowered before conversion".into(),
        }),
    }
}

/// Convert a guarded-connective-free formula of output semiring `S` into
/// a weighted expression.
pub fn to_expr<S: ValueCarrier>(f: &NestedFormula) -> Result<Expr<S>, TypeError> {
    debug_assert_ne!(S::TAG, SemiringTag::B, "use to_fo_formula for B");
    match f {
        NestedFormula::SAtom { weight, tag, args } => {
            if *tag != S::TAG {
                return Err(TypeError::TagMismatch {
                    expected: S::TAG,
                    found: *tag,
                    context: "S-atom".into(),
                });
            }
            Ok(Expr::Weight(*weight, args.clone()))
        }
        NestedFormula::Const(v) => match S::from_value(v) {
            Some(s) => Ok(Expr::Const(s)),
            None => Err(TypeError::TagMismatch {
                expected: S::TAG,
                found: v.tag(),
                context: "constant".into(),
            }),
        },
        NestedFormula::Add(fs) => Ok(Expr::Add(
            fs.iter().map(to_expr::<S>).collect::<Result<_, _>>()?,
        )),
        NestedFormula::Mul(fs) => Ok(Expr::Mul(
            fs.iter().map(to_expr::<S>).collect::<Result<_, _>>()?,
        )),
        NestedFormula::Sum(vars, g) => Ok(Expr::Sum(vars.clone(), Box::new(to_expr::<S>(g)?))),
        NestedFormula::Bracket(g, tag) => {
            if *tag != S::TAG {
                return Err(TypeError::TagMismatch {
                    expected: S::TAG,
                    found: *tag,
                    context: "bracket".into(),
                });
            }
            Ok(Expr::Bracket(to_fo_formula(g)?))
        }
        NestedFormula::Rel(..) | NestedFormula::Eq(..) => Err(TypeError::TagMismatch {
            expected: S::TAG,
            found: SemiringTag::B,
            context: "bare Boolean atom in an S-context (wrap in [·]_S)".into(),
        }),
        NestedFormula::Not(_) => Err(TypeError::NotBoolean {
            context: "negation in a non-Boolean context".into(),
        }),
        NestedFormula::Guarded { .. } => Err(TypeError::TagMismatch {
            expected: S::TAG,
            found: S::TAG,
            context: "guarded connective must be lowered before conversion".into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use agq_logic::Var;
    use agq_semiring::Nat;
    use agq_structure::{RelId, WeightId};

    #[test]
    fn boolean_sum_becomes_exists() {
        let f = NestedFormula::Sum(
            vec![Var(1)],
            Box::new(NestedFormula::Rel(RelId(0), vec![Var(0), Var(1)])),
        );
        let fo = to_fo_formula(&f).unwrap();
        assert!(matches!(fo, Formula::Exists(Var(1), _)));
    }

    #[test]
    fn nat_expression_roundtrip() {
        let f = NestedFormula::Sum(
            vec![Var(1)],
            Box::new(NestedFormula::Mul(vec![
                NestedFormula::Bracket(
                    Box::new(NestedFormula::Rel(RelId(0), vec![Var(0), Var(1)])),
                    SemiringTag::N,
                ),
                NestedFormula::SAtom {
                    weight: WeightId(0),
                    tag: SemiringTag::N,
                    args: vec![Var(1)],
                },
            ])),
        );
        let e = to_expr::<Nat>(&f).unwrap();
        assert_eq!(e.free_vars(), vec![Var(0)]);
    }

    #[test]
    fn bare_atom_in_s_context_rejected() {
        let f = NestedFormula::Rel(RelId(0), vec![Var(0)]);
        assert!(to_expr::<Nat>(&f).is_err());
    }

    #[test]
    fn constant_tag_checked() {
        let f = NestedFormula::Const(Value::N(Nat(3)));
        assert!(to_expr::<Nat>(&f).is_ok());
        assert!(to_fo_formula(&NestedFormula::Const(Value::B(agq_semiring::Bool(true)))).is_ok());
    }
}
