//! Nested weighted queries over multiple semirings: the logic **FOG[C]**
//! and its evaluation (Theorem 26) — system **S9**, result (B)/(E).
//!
//! Section 7 of the paper introduces `FO[C]`: formulas typed by semirings,
//! with summation as quantification and *connectives* transporting values
//! between semirings (`<  : ℕ×ℕ → B`, `/ : ℚ×ℚ → ℚ`, the Iverson bracket
//! `[·]_S : B → S`, …). The tractable fragment `FOG[C]` requires every
//! connective application to be **guarded**:
//! `[R(x₁…x_l)]_S · c(φ¹, …, φ^k)` with all free variables of the `φⁱ`
//! among the guard's.
//!
//! Evaluation follows the paper's inductive proof verbatim: the top-most
//! guarded connectives are replaced by fresh weight symbols whose values
//! are computed by scanning the (linearly many) guard tuples and querying
//! Theorem 8 evaluators for the argument formulas; the resulting
//! connective-free formula is an ordinary weighted expression evaluated
//! by `agq-core`. Boolean-valued results additionally get the
//! constant-delay answer enumeration of Theorem 24 (result (E)) through
//! `agq-enumerate`.

mod convert;
mod eval;
mod formula;
mod value;

pub use convert::{to_expr, to_fo_formula};
pub use eval::{NestedError, NestedEvaluator, NestedResult};
pub use formula::{Connective, NestedFormula, TypeError};
pub use value::{MultiWeights, SemiringTag, Value, ValueCarrier};
