//! Differential and example tests for Theorem 26 (FOG[C] evaluation).

use agq_core::CompileOptions;
use agq_logic::Var;
use agq_nested::{Connective, MultiWeights, NestedEvaluator, NestedFormula, SemiringTag, Value};
use agq_semiring::{Bool, MaxF, Nat, Rat};
use agq_structure::fx::FxHashMap;
use agq_structure::{Elem, Signature, Structure};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

// -------------------------------------------------------------------
// A brute-force interpreter for FOG[C], used as the oracle.
// -------------------------------------------------------------------

fn naive(
    f: &NestedFormula,
    a: &Structure,
    w: &MultiWeights,
    env: &mut FxHashMap<Var, Elem>,
) -> Value {
    match f {
        NestedFormula::Rel(r, args) => {
            let t: Vec<Elem> = args.iter().map(|v| env[v]).collect();
            Value::B(Bool(a.holds(*r, &t)))
        }
        NestedFormula::Eq(x, y) => Value::B(Bool(env[x] == env[y])),
        NestedFormula::SAtom { weight, tag, args } => {
            let t: Vec<Elem> = args.iter().map(|v| env[v]).collect();
            w.get(*weight, &t, *tag)
        }
        NestedFormula::Const(v) => *v,
        NestedFormula::Add(fs) => {
            let tag = f.tag().unwrap();
            let mut acc = Value::zero(tag);
            for g in fs {
                acc = acc.add(&naive(g, a, w, env));
            }
            acc
        }
        NestedFormula::Mul(fs) => {
            let tag = f.tag().unwrap();
            let mut acc = Value::one(tag);
            for g in fs {
                acc = acc.mul(&naive(g, a, w, env));
            }
            acc
        }
        NestedFormula::Sum(vars, g) => {
            let tag = f.tag().unwrap();
            let mut acc = Value::zero(tag);
            sum_rec(vars, 0, g, a, w, env, &mut acc);
            acc
        }
        NestedFormula::Not(g) => Value::B(Bool(!naive(g, a, w, env).as_bool())),
        NestedFormula::Bracket(g, tag) => {
            if naive(g, a, w, env).as_bool() {
                Value::one(*tag)
            } else {
                Value::zero(*tag)
            }
        }
        NestedFormula::Guarded {
            guard,
            guard_args,
            connective,
            args,
        } => {
            let t: Vec<Elem> = guard_args.iter().map(|v| env[v]).collect();
            if !a.holds(*guard, &t) {
                return Value::zero(connective.output);
            }
            let vals: Vec<Value> = args.iter().map(|g| naive(g, a, w, env)).collect();
            (connective.apply)(&vals)
        }
    }
}

fn sum_rec(
    vars: &[Var],
    i: usize,
    g: &NestedFormula,
    a: &Structure,
    w: &MultiWeights,
    env: &mut FxHashMap<Var, Elem>,
    acc: &mut Value,
) {
    if i == vars.len() {
        *acc = acc.add(&naive(g, a, w, env));
        return;
    }
    let saved = env.get(&vars[i]).copied();
    for e in 0..a.domain_size() as Elem {
        env.insert(vars[i], e);
        sum_rec(vars, i + 1, g, a, w, env, acc);
    }
    match saved {
        Some(v) => {
            env.insert(vars[i], v);
        }
        None => {
            env.remove(&vars[i]);
        }
    }
}

// -------------------------------------------------------------------
// Fixtures
// -------------------------------------------------------------------

/// Graph with edges E, a unary "universe" guard U, and ℕ-valued node
/// weights `w`.
fn fixture(n: usize, m: usize, seed: u64) -> (Structure, MultiWeights) {
    let mut sig = Signature::new();
    let e = sig.add_relation("E", 2);
    let u = sig.add_relation("U", 1);
    let w = sig.add_weight("w", 1);
    let mut a = Structure::new(Arc::new(sig), n);
    let mut rng = SmallRng::seed_from_u64(seed);
    for v in 0..n as u32 {
        a.insert(u, &[v]);
    }
    for _ in 0..m {
        let x = rng.gen_range(0..n as u32);
        let y = rng.gen_range(0..n as u32);
        if x != y {
            a.insert(e, &[x, y]);
        }
    }
    let mut mw = MultiWeights::new();
    for v in 0..n as u32 {
        mw.set(w, &[v], Value::N(Nat(rng.gen_range(1..10))));
    }
    (a, mw)
}

fn div_conn() -> Connective {
    // ÷ : ℕ × ℕ → Qmax (as MaxF), 0-denominator ↦ semiring zero (−∞)
    Connective::new(
        "avg-div",
        vec![SemiringTag::N, SemiringTag::N],
        SemiringTag::MaxF,
        |vals| match (&vals[0], &vals[1]) {
            (Value::N(num), Value::N(den)) => {
                if den.0 == 0 {
                    Value::MaxF(MaxF::NEG_INF)
                } else {
                    Value::MaxF(MaxF(num.0 as f64 / den.0 as f64))
                }
            }
            _ => unreachable!(),
        },
    )
}

fn gt_conn() -> Connective {
    Connective::new(
        "gt",
        vec![SemiringTag::N, SemiringTag::N],
        SemiringTag::B,
        |vals| match (&vals[0], &vals[1]) {
            (Value::N(a), Value::N(b)) => Value::B(Bool(a.0 > b.0)),
            _ => unreachable!(),
        },
    )
}

// -------------------------------------------------------------------
// The paper's introduction examples
// -------------------------------------------------------------------

/// `max_x (Σ_y [E(x,y)]·w(y)) / (Σ_y [E(x,y)])` — maximum over all
/// vertices of the average weight of out-neighbors (first nested example
/// in the introduction).
#[test]
fn max_average_neighbor_weight() {
    let (a, mw) = fixture(16, 36, 7);
    let sig = a.signature().clone();
    let e = sig.relation("E").unwrap();
    let u = sig.relation("U").unwrap();
    let w = sig.weight("w").unwrap();
    let (x, y, y2) = (Var(0), Var(1), Var(2));
    let num = NestedFormula::Sum(
        vec![y],
        Box::new(NestedFormula::Mul(vec![
            NestedFormula::Bracket(Box::new(NestedFormula::Rel(e, vec![x, y])), SemiringTag::N),
            NestedFormula::SAtom {
                weight: w,
                tag: SemiringTag::N,
                args: vec![y],
            },
        ])),
    );
    let den = NestedFormula::Sum(
        vec![y2],
        Box::new(NestedFormula::Bracket(
            Box::new(NestedFormula::Rel(e, vec![x, y2])),
            SemiringTag::N,
        )),
    );
    let avg = NestedFormula::Guarded {
        guard: u,
        guard_args: vec![x],
        connective: div_conn(),
        args: vec![num, den],
    };
    let query = NestedFormula::Sum(vec![x], Box::new(avg));
    assert_eq!(query.tag().unwrap(), SemiringTag::MaxF);

    let ev = NestedEvaluator::build(&a, &mw, &query, &CompileOptions::default()).unwrap();
    let got = ev.value();
    let expect = naive(&query, &a, &mw, &mut FxHashMap::default());
    match (got, expect) {
        (Value::MaxF(MaxF(g)), Value::MaxF(MaxF(e2))) => {
            assert!((g - e2).abs() < 1e-9, "{g} vs {e2}");
        }
        other => panic!("unexpected values {other:?}"),
    }
}

/// `f(x) = ∃y E(x,y) ∧ (w(y) > Σ_z [E(y,z)]·w(z))` — the introduction's
/// Boolean nested query: x has a neighbor whose weight exceeds the sum of
/// its own neighbors' weights.
#[test]
fn rich_neighbor_boolean_query() {
    for seed in [3u64, 9, 21] {
        let (a, mw) = fixture(14, 30, seed);
        let sig = a.signature().clone();
        let e = sig.relation("E").unwrap();
        let w = sig.weight("w").unwrap();
        let (x, y, z) = (Var(0), Var(1), Var(2));
        let wy = NestedFormula::SAtom {
            weight: w,
            tag: SemiringTag::N,
            args: vec![y],
        };
        let neigh_sum = NestedFormula::Sum(
            vec![z],
            Box::new(NestedFormula::Mul(vec![
                NestedFormula::Bracket(Box::new(NestedFormula::Rel(e, vec![y, z])), SemiringTag::N),
                NestedFormula::SAtom {
                    weight: w,
                    tag: SemiringTag::N,
                    args: vec![z],
                },
            ])),
        );
        // guard E(x,y) covers the free variable y of both arguments
        let cmp = NestedFormula::Guarded {
            guard: e,
            guard_args: vec![x, y],
            connective: gt_conn(),
            args: vec![wy, neigh_sum],
        };
        let f = NestedFormula::Sum(vec![y], Box::new(cmp));
        assert_eq!(f.tag().unwrap(), SemiringTag::B);

        let mut ev = NestedEvaluator::build(&a, &mw, &f, &CompileOptions::default()).unwrap();
        for v in 0..a.domain_size() as u32 {
            let mut env = FxHashMap::default();
            env.insert(x, v);
            let expect = naive(&f, &a, &mw, &mut env);
            let got = ev.query(&[v]);
            assert_eq!(got, expect, "x={v} seed={seed}");
        }
        // result (E): enumerate the satisfying x's with constant delay
        let ix = ev.enumerate_answers(&CompileOptions::default()).unwrap();
        let mut got: Vec<u32> = Vec::new();
        let mut it = ix.iter();
        while let Some(t) = it.next() {
            got.push(t[0]);
        }
        got.sort_unstable();
        let mut expect: Vec<u32> = (0..a.domain_size() as u32)
            .filter(|&v| {
                let mut env = FxHashMap::default();
                env.insert(x, v);
                naive(&f, &a, &mw, &mut env).as_bool()
            })
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect, "seed {seed}");
    }
}

/// Example 9-style rational aggregation through connectives: average of
/// averages stays exact in ℚ.
#[test]
fn rational_connective_values() {
    let (a, mw) = fixture(10, 20, 13);
    let sig = a.signature().clone();
    let u = sig.relation("U").unwrap();
    let e = sig.relation("E").unwrap();
    let x = Var(0);
    let y = Var(1);
    // r(x) = degree(x) as ℚ via connective ℕ→ℚ
    let deg = NestedFormula::Sum(
        vec![y],
        Box::new(NestedFormula::Bracket(
            Box::new(NestedFormula::Rel(e, vec![x, y])),
            SemiringTag::N,
        )),
    );
    let to_q = Connective::new(
        "ℕ→ℚ half",
        vec![SemiringTag::N],
        SemiringTag::Q,
        |vals| match &vals[0] {
            Value::N(n) => Value::Q(Rat::new(n.0 as i64, 2)),
            _ => unreachable!(),
        },
    );
    let halved = NestedFormula::Guarded {
        guard: u,
        guard_args: vec![x],
        connective: to_q,
        args: vec![deg],
    };
    // Σ_x halved(x) = m/2 exactly (each directed edge counted once)
    let total = NestedFormula::Sum(vec![x], Box::new(halved));
    let ev = NestedEvaluator::build(&a, &mw, &total, &CompileOptions::default()).unwrap();
    let expect = naive(&total, &a, &mw, &mut FxHashMap::default());
    assert_eq!(ev.value(), expect);
    let m = a.relation(e).len() as i64;
    assert_eq!(ev.value(), Value::Q(Rat::new(m, 2)));
}

/// Randomized differential test over two levels of nesting.
#[test]
fn randomized_nested_differential() {
    for seed in 0..5u64 {
        let (a, mw) = fixture(11, 22, 100 + seed);
        let sig = a.signature().clone();
        let e = sig.relation("E").unwrap();
        let u = sig.relation("U").unwrap();
        let w = sig.weight("w").unwrap();
        let (x, y) = (Var(0), Var(1));
        // inner: count of out-neighbors weighted
        let inner = NestedFormula::Sum(
            vec![y],
            Box::new(NestedFormula::Mul(vec![
                NestedFormula::Bracket(Box::new(NestedFormula::Rel(e, vec![x, y])), SemiringTag::N),
                NestedFormula::SAtom {
                    weight: w,
                    tag: SemiringTag::N,
                    args: vec![y],
                },
            ])),
        );
        let gt5 = Connective::new(
            "gt5",
            vec![SemiringTag::N],
            SemiringTag::B,
            |vals| match &vals[0] {
                Value::N(n) => Value::B(Bool(n.0 > 5)),
                _ => unreachable!(),
            },
        );
        let heavy = NestedFormula::Guarded {
            guard: u,
            guard_args: vec![x],
            connective: gt5,
            args: vec![inner],
        };
        // count heavy vertices
        let f = NestedFormula::Sum(
            vec![x],
            Box::new(NestedFormula::Bracket(Box::new(heavy), SemiringTag::N)),
        );
        let ev = NestedEvaluator::build(&a, &mw, &f, &CompileOptions::default()).unwrap();
        let expect = naive(&f, &a, &mw, &mut FxHashMap::default());
        assert_eq!(ev.value(), expect, "seed {seed}");
    }
}
