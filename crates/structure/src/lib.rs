//! Relational structures with semiring-valued weight functions:
//! system **S4** of the reproduction.
//!
//! A `Σ(w)`-structure (Section 3 of the paper) is a finite relational
//! structure `A` over a signature `Σ` together with, for every weight
//! symbol `w ∈ w` of arity `r`, a weight function `w_A : A^r → S` that is
//! nonzero only on tuples of the structure. This crate provides:
//!
//! * [`Signature`] — relation and weight symbol declarations;
//! * [`Structure`] — the relational part, with per-relation tuple indexes
//!   and dynamic tuple insertion/removal;
//! * [`WeightedStructure`] — the weights, generic over the semiring;
//! * [`gaifman`] — extraction of the Gaifman graph (two elements are
//!   adjacent iff they co-occur in some tuple) and its decomposition into
//!   connected components ([`gaifman::GaifmanComponents`]) — the shard
//!   key of the sharded engines, since Gaifman-preserving updates can
//!   never couple two components;
//! * [`Tuple`] — a small inline tuple type (arity ≤ [`MAX_ARITY`]);
//! * [`fx`] — a fast FxHash-style hasher for the element-keyed maps
//!   (HashDoS is not a concern for an analytical engine).

pub use agq_semiring::fx;
pub mod gaifman;
mod signature;
#[allow(clippy::module_inception)]
mod structure;
mod tuple;
mod weighted;

pub use signature::{RelId, Signature, WeightId};
pub use structure::{Relation, Structure};
pub use tuple::{Tuple, MAX_ARITY};
pub use weighted::WeightedStructure;

/// A domain element: structures are always over `0..n`.
pub type Elem = u32;
