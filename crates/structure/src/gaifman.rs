//! Gaifman graphs of relational structures.

use crate::structure::Structure;
use agq_graph::Graph;

/// Build the Gaifman graph of `a`: vertices are the domain elements, and
/// two *distinct* elements are adjacent iff they occur together in some
/// tuple of some relation (Section 2 of the paper).
///
/// Linear in the number of tuples for bounded arity.
pub fn gaifman_graph(a: &Structure) -> Graph {
    let mut g = Graph::new(a.domain_size());
    for r in a.signature().relation_ids() {
        for t in a.relation(r).iter() {
            let items = t.as_slice();
            for i in 0..items.len() {
                for j in i + 1..items.len() {
                    if items[i] != items[j] {
                        g.insert_edge(items[i], items[j]);
                    }
                }
            }
        }
    }
    g.normalize();
    g
}

/// Check that inserting `items` into a relation would preserve the Gaifman
/// graph `g` of the structure: all pairs of distinct elements must already
/// be adjacent (i.e. the tuple's elements form a clique), the condition for
/// the Gaifman-preserving updates of Theorem 24.
pub fn tuple_preserves_gaifman(g: &Graph, items: &[u32]) -> bool {
    for i in 0..items.len() {
        for j in i + 1..items.len() {
            if items[i] != items[j] && !g.has_edge(items[i], items[j]) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::Signature;
    use std::sync::Arc;

    #[test]
    fn binary_tuples_become_edges() {
        let mut sig = Signature::new();
        let e = sig.add_relation("E", 2);
        let mut a = Structure::new(Arc::new(sig), 4);
        a.insert(e, &[0, 1]);
        a.insert(e, &[1, 2]);
        a.insert(e, &[2, 2]); // self-pair: no Gaifman edge
        let g = gaifman_graph(&a);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn ternary_tuples_become_triangles() {
        let mut sig = Signature::new();
        let r = sig.add_relation("R", 3);
        let mut a = Structure::new(Arc::new(sig), 5);
        a.insert(r, &[0, 2, 4]);
        let g = gaifman_graph(&a);
        assert!(g.has_edge(0, 2) && g.has_edge(2, 4) && g.has_edge(0, 4));
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn gaifman_preservation_check() {
        let mut sig = Signature::new();
        let e = sig.add_relation("E", 2);
        let mut a = Structure::new(Arc::new(sig), 4);
        a.insert(e, &[0, 1]);
        a.insert(e, &[1, 2]);
        let g = gaifman_graph(&a);
        assert!(tuple_preserves_gaifman(&g, &[1, 0]));
        assert!(tuple_preserves_gaifman(&g, &[2, 2]));
        assert!(!tuple_preserves_gaifman(&g, &[0, 2]));
    }
}
