//! Gaifman graphs of relational structures, and their decomposition into
//! connected components.
//!
//! Components are the natural shard key of the whole dynamic story:
//! Gaifman-preserving updates (Theorem 24) only touch tuples that are
//! cliques of the *compile-time* Gaifman graph, so two elements in
//! different components can never interact — not through an update, not
//! through an answer of a query whose free variables are forced into one
//! component. [`GaifmanComponents`] computes the component of every
//! element with a union-find pass over the tuples (no materialized edge
//! set needed) and assigns whole components to a bounded number of
//! *shards*, balancing by component size.

use crate::structure::Structure;
use crate::Elem;
use agq_graph::Graph;

/// Build the Gaifman graph of `a`: vertices are the domain elements, and
/// two *distinct* elements are adjacent iff they occur together in some
/// tuple of some relation (Section 2 of the paper).
///
/// Linear in the number of tuples for bounded arity.
pub fn gaifman_graph(a: &Structure) -> Graph {
    let mut g = Graph::new(a.domain_size());
    for r in a.signature().relation_ids() {
        for t in a.relation(r).iter() {
            let items = t.as_slice();
            for i in 0..items.len() {
                for j in i + 1..items.len() {
                    if items[i] != items[j] {
                        g.insert_edge(items[i], items[j]);
                    }
                }
            }
        }
    }
    g.normalize();
    g
}

/// Check that inserting `items` into a relation would preserve the Gaifman
/// graph `g` of the structure: all pairs of distinct elements must already
/// be adjacent (i.e. the tuple's elements form a clique), the condition for
/// the Gaifman-preserving updates of Theorem 24.
pub fn tuple_preserves_gaifman(g: &Graph, items: &[u32]) -> bool {
    for i in 0..items.len() {
        for j in i + 1..items.len() {
            if items[i] != items[j] && !g.has_edge(items[i], items[j]) {
                return false;
            }
        }
    }
    true
}

/// The connected components of a structure's Gaifman graph, with an
/// assignment of components to a bounded number of shards.
///
/// Built by a union-find pass over the tuples: every tuple is a clique,
/// so unioning consecutive elements of each tuple suffices. Construction
/// is `O(|A| α(|A|))`; lookups are `O(1)` after the final flattening.
#[derive(Clone, Debug)]
pub struct GaifmanComponents {
    /// Element → dense component id (`0..num_components`).
    comp: Vec<u32>,
    /// Component id → shard id (`0..num_shards`).
    comp_shard: Vec<u32>,
    num_shards: usize,
}

impl GaifmanComponents {
    /// Decompose `a` into Gaifman components and pack them into at most
    /// `max_shards` shards (size-balanced, largest component first).
    /// `max_shards = 0` means one shard per component.
    pub fn new(a: &Structure, max_shards: usize) -> Self {
        let n = a.domain_size();
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                // path halving
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        for r in a.signature().relation_ids() {
            for t in a.relation(r).iter() {
                let items = t.as_slice();
                for w in items.windows(2) {
                    let (ra, rb) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
                    if ra != rb {
                        parent[ra.max(rb) as usize] = ra.min(rb);
                    }
                }
            }
        }
        // Flatten to dense component ids (roots in element order).
        let mut comp = vec![u32::MAX; n];
        let mut sizes: Vec<u32> = Vec::new();
        for e in 0..n as u32 {
            let root = find(&mut parent, e) as usize;
            if comp[root] == u32::MAX {
                comp[root] = sizes.len() as u32;
                sizes.push(0);
            }
            comp[e as usize] = comp[root];
            sizes[comp[e as usize] as usize] += 1;
        }
        // Pack components into shards: largest first onto the currently
        // lightest shard (greedy balancing; deterministic).
        let num_comps = sizes.len();
        let num_shards = match max_shards {
            0 => num_comps.max(1),
            m => m.min(num_comps).max(1),
        };
        let mut order: Vec<u32> = (0..num_comps as u32).collect();
        order.sort_by_key(|&c| (std::cmp::Reverse(sizes[c as usize]), c));
        let mut load = vec![0u64; num_shards];
        let mut comp_shard = vec![0u32; num_comps];
        for c in order {
            let s = (0..num_shards).min_by_key(|&s| (load[s], s)).unwrap();
            comp_shard[c as usize] = s as u32;
            load[s] += sizes[c as usize] as u64;
        }
        GaifmanComponents {
            comp,
            comp_shard,
            num_shards,
        }
    }

    /// Reassemble a decomposition from its flat tables (element →
    /// component, component → shard), validating that every table entry
    /// is in range so a corrupted snapshot yields `Err` instead of
    /// out-of-bounds panics in the routing hot path.
    pub fn from_parts(
        comp: Vec<u32>,
        comp_shard: Vec<u32>,
        num_shards: usize,
    ) -> Result<Self, &'static str> {
        let num_comps = comp_shard.len();
        if comp.iter().any(|&c| c as usize >= num_comps) {
            return Err("component id out of range");
        }
        if comp_shard.iter().any(|&s| s as usize >= num_shards) {
            return Err("shard id out of range");
        }
        Ok(GaifmanComponents {
            comp,
            comp_shard,
            num_shards,
        })
    }

    /// The flat tables behind the decomposition: `(element → component,
    /// component → shard)`, the inverse of [`from_parts`](Self::from_parts).
    pub fn parts(&self) -> (&[u32], &[u32]) {
        (&self.comp, &self.comp_shard)
    }

    /// Number of Gaifman components.
    pub fn num_components(&self) -> usize {
        self.comp_shard.len()
    }

    /// Number of shards components were packed into.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Dense component id of an element.
    pub fn component_of(&self, e: Elem) -> u32 {
        self.comp[e as usize]
    }

    /// Shard owning an element.
    pub fn shard_of(&self, e: Elem) -> u32 {
        self.comp_shard[self.comp[e as usize] as usize]
    }

    /// Shard owning an element, or `None` when the element is outside
    /// the domain the decomposition was built over — the non-panicking
    /// lookup update-routing uses on unvalidated input.
    pub fn try_shard_of(&self, e: Elem) -> Option<u32> {
        let c = *self.comp.get(e as usize)?;
        Some(self.comp_shard[c as usize])
    }

    /// Shard owning a tuple, if all its elements live in one shard
    /// (`None` when the tuple spans shards — such a tuple is never a
    /// clique of the Gaifman graph, hence never in any relation).
    pub fn shard_of_tuple(&self, items: &[Elem]) -> Option<u32> {
        let mut it = items.iter();
        let first = self.shard_of(*it.next()?);
        for &e in it {
            if self.shard_of(e) != first {
                return None;
            }
        }
        Some(first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::Signature;
    use std::sync::Arc;

    #[test]
    fn binary_tuples_become_edges() {
        let mut sig = Signature::new();
        let e = sig.add_relation("E", 2);
        let mut a = Structure::new(Arc::new(sig), 4);
        a.insert(e, &[0, 1]);
        a.insert(e, &[1, 2]);
        a.insert(e, &[2, 2]); // self-pair: no Gaifman edge
        let g = gaifman_graph(&a);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn ternary_tuples_become_triangles() {
        let mut sig = Signature::new();
        let r = sig.add_relation("R", 3);
        let mut a = Structure::new(Arc::new(sig), 5);
        a.insert(r, &[0, 2, 4]);
        let g = gaifman_graph(&a);
        assert!(g.has_edge(0, 2) && g.has_edge(2, 4) && g.has_edge(0, 4));
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn components_union_find_matches_graph() {
        let mut sig = Signature::new();
        let e = sig.add_relation("E", 2);
        let r = sig.add_relation("R", 3);
        let mut a = Structure::new(Arc::new(sig), 9);
        a.insert(e, &[0, 1]);
        a.insert(e, &[1, 2]);
        a.insert(r, &[4, 5, 6]);
        // 7, 8, 3 isolated
        let c = GaifmanComponents::new(&a, 0);
        assert_eq!(c.num_components(), 5);
        assert_eq!(c.component_of(0), c.component_of(2));
        assert_eq!(c.component_of(4), c.component_of(6));
        assert_ne!(c.component_of(0), c.component_of(4));
        assert_ne!(c.component_of(3), c.component_of(7));
        assert_eq!(c.shard_of_tuple(&[0, 1]), Some(c.shard_of(0)));
        assert_eq!(c.shard_of_tuple(&[0, 4]), None);
    }

    #[test]
    fn shard_packing_is_balanced_and_component_whole() {
        let mut sig = Signature::new();
        let e = sig.add_relation("E", 2);
        let mut a = Structure::new(Arc::new(sig), 12);
        // components: {0..5} (size 6), {6,7}, {8,9}, {10,11}
        for w in [
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (6, 7),
            (8, 9),
            (10, 11),
        ] {
            a.insert(e, &[w.0, w.1]);
        }
        let c = GaifmanComponents::new(&a, 2);
        assert_eq!(c.num_shards(), 2);
        // every component maps to exactly one shard
        for (u, v) in [(0u32, 5u32), (6, 7), (8, 9), (10, 11)] {
            assert_eq!(c.shard_of(u), c.shard_of(v));
        }
        // greedy balance: big component alone, three small ones together
        let big = c.shard_of(0);
        assert_eq!(c.shard_of(6), 1 - big);
        assert_eq!(c.shard_of(8), 1 - big);
        assert_eq!(c.shard_of(10), 1 - big);
        // shard count never exceeds component count
        let c1 = GaifmanComponents::new(&a, 64);
        assert_eq!(c1.num_shards(), 4);
    }

    #[test]
    fn gaifman_preservation_check() {
        let mut sig = Signature::new();
        let e = sig.add_relation("E", 2);
        let mut a = Structure::new(Arc::new(sig), 4);
        a.insert(e, &[0, 1]);
        a.insert(e, &[1, 2]);
        let g = gaifman_graph(&a);
        assert!(tuple_preserves_gaifman(&g, &[1, 0]));
        assert!(tuple_preserves_gaifman(&g, &[2, 2]));
        assert!(!tuple_preserves_gaifman(&g, &[0, 2]));
    }
}
