//! Small inline tuples of domain elements.

use crate::Elem;
use std::fmt;
use std::ops::Index;

/// Maximum relation/weight arity supported by the engine.
///
/// The paper allows arbitrary fixed arities; five covers every query in the
/// paper and keeps tuples inline (no heap traffic on the hot tuple-index
/// paths). Raising it is a one-line change.
pub const MAX_ARITY: usize = 5;

/// A tuple of at most [`MAX_ARITY`] elements, stored inline.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    len: u8,
    items: [Elem; MAX_ARITY],
}

impl Tuple {
    /// Build from a slice.
    ///
    /// # Panics
    /// Panics if `items.len() > MAX_ARITY`.
    pub fn new(items: &[Elem]) -> Self {
        assert!(
            items.len() <= MAX_ARITY,
            "arity {} exceeds MAX_ARITY {MAX_ARITY}",
            items.len()
        );
        let mut buf = [0; MAX_ARITY];
        buf[..items.len()].copy_from_slice(items);
        Tuple {
            len: items.len() as u8,
            items: buf,
        }
    }

    /// The empty tuple.
    pub fn empty() -> Self {
        Tuple::new(&[])
    }

    /// Single-element tuple.
    pub fn unary(a: Elem) -> Self {
        Tuple::new(&[a])
    }

    /// Two-element tuple.
    pub fn binary(a: Elem, b: Elem) -> Self {
        Tuple::new(&[a, b])
    }

    /// Arity.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the tuple is empty (arity 0).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[Elem] {
        &self.items[..self.len as usize]
    }

    /// Iterate over the elements.
    pub fn iter(&self) -> impl Iterator<Item = Elem> + '_ {
        self.as_slice().iter().copied()
    }

    /// Whether `e` occurs in the tuple.
    pub fn contains(&self, e: Elem) -> bool {
        self.as_slice().contains(&e)
    }
}

impl Index<usize> for Tuple {
    type Output = Elem;
    fn index(&self, i: usize) -> &Elem {
        &self.as_slice()[i]
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, e) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, ")")
    }
}

impl From<&[Elem]> for Tuple {
    fn from(items: &[Elem]) -> Self {
        Tuple::new(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_eq() {
        let t = Tuple::new(&[3, 1, 4]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.as_slice(), &[3, 1, 4]);
        assert_eq!(t[1], 1);
        assert_eq!(t, Tuple::new(&[3, 1, 4]));
        assert_ne!(t, Tuple::new(&[3, 1]));
        assert!(t.contains(4) && !t.contains(5));
    }

    #[test]
    fn padding_does_not_leak_into_equality() {
        // Two tuples of equal prefix but different construction paths.
        let a = Tuple::new(&[7]);
        let mut b = Tuple::new(&[7, 9]);
        b = Tuple::new(&b.as_slice()[..1]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_ARITY")]
    fn oversized_panics() {
        let _ = Tuple::new(&[1, 2, 3, 4, 5, 6]);
    }
}
