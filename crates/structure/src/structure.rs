//! Finite relational structures with tuple indexes.

use crate::fx::FxHashMap;
use crate::signature::{RelId, Signature};
use crate::tuple::Tuple;
use crate::Elem;
use std::sync::Arc;

/// One relation instance: an indexed set of tuples of fixed arity.
///
/// Tuples are stored in insertion order with a hash index for O(1)
/// membership; removal swaps with the last tuple (order is not meaningful).
#[derive(Clone, Debug, Default)]
pub struct Relation {
    arity: usize,
    tuples: Vec<Tuple>,
    index: FxHashMap<Tuple, u32>,
}

impl Relation {
    fn new(arity: usize) -> Self {
        Relation {
            arity,
            tuples: Vec::new(),
            index: FxHashMap::default(),
        }
    }

    /// Arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.index.contains_key(t)
    }

    /// Iterate over tuples.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// The tuples as a slice.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(t.len(), self.arity, "tuple arity mismatch");
        if self.index.contains_key(&t) {
            return false;
        }
        self.index.insert(t, self.tuples.len() as u32);
        self.tuples.push(t);
        true
    }

    fn remove(&mut self, t: &Tuple) -> bool {
        match self.index.remove(t) {
            None => false,
            Some(pos) => {
                let pos = pos as usize;
                self.tuples.swap_remove(pos);
                if pos < self.tuples.len() {
                    self.index.insert(self.tuples[pos], pos as u32);
                }
                true
            }
        }
    }
}

/// A finite `Σ`-structure over the domain `0..n`.
#[derive(Clone, Debug)]
pub struct Structure {
    sig: Arc<Signature>,
    n: usize,
    relations: Vec<Relation>,
}

impl Structure {
    /// Empty structure with `n` elements over `sig`.
    pub fn new(sig: Arc<Signature>, n: usize) -> Self {
        let relations = sig
            .relation_ids()
            .map(|r| Relation::new(sig.relation_arity(r)))
            .collect();
        Structure { sig, n, relations }
    }

    /// The signature.
    pub fn signature(&self) -> &Arc<Signature> {
        &self.sig
    }

    /// Domain size `|A|`.
    pub fn domain_size(&self) -> usize {
        self.n
    }

    /// Total number of tuples across all relations (the paper's
    /// representation size; linear in `|A|` on bounded expansion classes).
    pub fn num_tuples(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }

    /// The relation instance for `r`.
    pub fn relation(&self, r: RelId) -> &Relation {
        &self.relations[r.0 as usize]
    }

    /// Insert a tuple; returns false if it was already present.
    ///
    /// # Panics
    /// Panics if an element is out of the domain or the arity mismatches.
    pub fn insert(&mut self, r: RelId, items: &[Elem]) -> bool {
        let t = Tuple::new(items);
        for e in t.iter() {
            assert!((e as usize) < self.n, "element {e} out of domain");
        }
        self.relations[r.0 as usize].insert(t)
    }

    /// Remove a tuple; returns false if absent.
    pub fn remove(&mut self, r: RelId, items: &[Elem]) -> bool {
        self.relations[r.0 as usize].remove(&Tuple::new(items))
    }

    /// Membership test.
    pub fn holds(&self, r: RelId, items: &[Elem]) -> bool {
        self.relations[r.0 as usize].contains(&Tuple::new(items))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_sig() -> Arc<Signature> {
        let mut sig = Signature::new();
        sig.add_relation("E", 2);
        sig.add_relation("P", 1);
        Arc::new(sig)
    }

    #[test]
    fn insert_query_remove() {
        let sig = graph_sig();
        let e = sig.relation("E").unwrap();
        let mut a = Structure::new(sig, 5);
        assert!(a.insert(e, &[0, 1]));
        assert!(!a.insert(e, &[0, 1]), "duplicate rejected");
        assert!(a.insert(e, &[1, 2]));
        assert!(a.holds(e, &[0, 1]));
        assert!(!a.holds(e, &[1, 0]), "directed tuples");
        assert_eq!(a.num_tuples(), 2);
        assert!(a.remove(e, &[0, 1]));
        assert!(!a.remove(e, &[0, 1]));
        assert!(!a.holds(e, &[0, 1]));
        assert!(a.holds(e, &[1, 2]), "swap_remove keeps the other tuple");
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn out_of_domain_panics() {
        let sig = graph_sig();
        let e = sig.relation("E").unwrap();
        let mut a = Structure::new(sig, 3);
        a.insert(e, &[0, 7]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let sig = graph_sig();
        let e = sig.relation("E").unwrap();
        let mut a = Structure::new(sig, 3);
        a.insert(e, &[0]);
    }

    #[test]
    fn removal_keeps_index_consistent() {
        let sig = graph_sig();
        let e = sig.relation("E").unwrap();
        let mut a = Structure::new(sig, 10);
        for i in 0..9u32 {
            a.insert(e, &[i, i + 1]);
        }
        a.remove(e, &[0, 1]); // forces a swap with the last tuple
        for i in 1..9u32 {
            assert!(a.holds(e, &[i, i + 1]), "({i},{}) lost", i + 1);
        }
        assert_eq!(a.relation(e).len(), 8);
    }
}
