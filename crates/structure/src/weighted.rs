//! Weight functions over a semiring, attached to a structure.

use crate::fx::FxHashMap;
use crate::signature::WeightId;
use crate::structure::Structure;
use crate::tuple::Tuple;
use crate::Elem;
use agq_semiring::Semiring;
use std::sync::Arc;

/// The weights of a `Σ(w)`-structure: for every weight symbol, a function
/// `A^r → S`.
///
/// Unary weights are stored densely (every element may carry one); weights
/// of arity ≥ 2 are stored sparsely and — per the paper's definition — may
/// be nonzero **only on tuples of the structure**: setting a weight on a
/// tuple that belongs to no relation of matching arity is rejected. This is
/// what keeps the weighted structure within the sparsity class of its
/// Gaifman graph.
#[derive(Clone, Debug)]
pub struct WeightedStructure<S> {
    structure: Arc<Structure>,
    /// Dense tables for unary weights, indexed by `WeightId` order
    /// (None for non-unary symbols).
    unary: Vec<Option<Vec<S>>>,
    /// Sparse maps for weights of arity ≠ 1 (including nullary).
    sparse: Vec<FxHashMap<Tuple, S>>,
}

impl<S: Semiring> WeightedStructure<S> {
    /// All-zero weights over `structure`.
    pub fn new(structure: Arc<Structure>) -> Self {
        let sig = structure.signature().clone();
        let n = structure.domain_size();
        let mut unary = Vec::new();
        let mut sparse = Vec::new();
        for w in sig.weight_ids() {
            if sig.weight_arity(w) == 1 {
                unary.push(Some(vec![S::zero(); n]));
            } else {
                unary.push(None);
            }
            sparse.push(FxHashMap::default());
        }
        WeightedStructure {
            structure,
            unary,
            sparse,
        }
    }

    /// The underlying structure.
    pub fn structure(&self) -> &Arc<Structure> {
        &self.structure
    }

    /// The weight `w(t)`.
    pub fn get(&self, w: WeightId, t: &[Elem]) -> S {
        let widx = w.0 as usize;
        if let Some(table) = &self.unary[widx] {
            debug_assert_eq!(t.len(), 1);
            return table[t[0] as usize].clone();
        }
        self.sparse[widx]
            .get(&Tuple::new(t))
            .cloned()
            .unwrap_or_else(S::zero)
    }

    /// Set the weight `w(t) := value`, returning the old value.
    ///
    /// # Panics
    /// * arity mismatch with the declaration;
    /// * elements out of the domain;
    /// * for arity ≥ 2: `t` is not a tuple of any relation of that arity
    ///   and `value` is nonzero (the paper's support condition).
    pub fn set(&mut self, w: WeightId, t: &[Elem], value: S) -> S {
        let sig = self.structure.signature();
        assert_eq!(
            t.len(),
            sig.weight_arity(w),
            "weight {} expects arity {}",
            sig.weight_name(w),
            sig.weight_arity(w)
        );
        for &e in t {
            assert!(
                (e as usize) < self.structure.domain_size(),
                "element {e} out of domain"
            );
        }
        let widx = w.0 as usize;
        if let Some(table) = &mut self.unary[widx] {
            return std::mem::replace(&mut table[t[0] as usize], value);
        }
        if t.len() >= 2 && !value.is_zero() {
            let supported = sig
                .relation_ids()
                .any(|r| sig.relation_arity(r) == t.len() && self.structure.holds(r, t));
            assert!(
                supported,
                "weight {} set on {:?}, which is not a tuple of any arity-{} relation",
                sig.weight_name(w),
                t,
                t.len()
            );
        }
        let key = Tuple::new(t);
        if value.is_zero() {
            self.sparse[widx].remove(&key).unwrap_or_else(S::zero)
        } else {
            self.sparse[widx].insert(key, value).unwrap_or_else(S::zero)
        }
    }

    /// Iterate over the nonzero entries of a non-unary weight symbol.
    pub fn sparse_entries(&self, w: WeightId) -> impl Iterator<Item = (&Tuple, &S)> {
        self.sparse[w.0 as usize].iter()
    }

    /// The dense table of a unary weight symbol.
    pub fn unary_table(&self, w: WeightId) -> &[S] {
        self.unary[w.0 as usize]
            .as_deref()
            .expect("weight symbol is not unary")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::Signature;
    use agq_semiring::Nat;

    fn setup() -> (Arc<Structure>, WeightId, WeightId) {
        let mut sig = Signature::new();
        let e = sig.add_relation("E", 2);
        let wu = sig.add_weight("u", 1);
        let wb = sig.add_weight("w", 2);
        let sig = Arc::new(sig);
        let mut a = Structure::new(sig, 4);
        a.insert(e, &[0, 1]);
        a.insert(e, &[1, 2]);
        (Arc::new(a), wu, wb)
    }

    #[test]
    fn unary_weights_are_dense() {
        let (a, wu, _) = setup();
        let mut ws: WeightedStructure<Nat> = WeightedStructure::new(a);
        assert_eq!(ws.get(wu, &[2]), Nat(0));
        assert_eq!(ws.set(wu, &[2], Nat(9)), Nat(0));
        assert_eq!(ws.get(wu, &[2]), Nat(9));
        assert_eq!(ws.unary_table(wu)[2], Nat(9));
    }

    #[test]
    fn binary_weights_require_support() {
        let (a, _, wb) = setup();
        let mut ws: WeightedStructure<Nat> = WeightedStructure::new(a);
        ws.set(wb, &[0, 1], Nat(5));
        assert_eq!(ws.get(wb, &[0, 1]), Nat(5));
        assert_eq!(ws.get(wb, &[1, 0]), Nat(0));
        // setting zero anywhere is fine
        ws.set(wb, &[3, 3], Nat(0));
    }

    #[test]
    #[should_panic(expected = "not a tuple of any arity-2 relation")]
    fn off_support_weight_panics() {
        let (a, _, wb) = setup();
        let mut ws: WeightedStructure<Nat> = WeightedStructure::new(a);
        ws.set(wb, &[3, 0], Nat(1));
    }

    #[test]
    fn setting_zero_clears_storage() {
        let (a, _, wb) = setup();
        let mut ws: WeightedStructure<Nat> = WeightedStructure::new(a);
        ws.set(wb, &[0, 1], Nat(5));
        assert_eq!(ws.sparse_entries(wb).count(), 1);
        assert_eq!(ws.set(wb, &[0, 1], Nat(0)), Nat(5));
        assert_eq!(ws.sparse_entries(wb).count(), 0);
    }
}
