//! Signatures: declarations of relation and weight symbols.

use crate::fx::FxHashMap;
use crate::tuple::MAX_ARITY;
use std::fmt;

/// Identifier of a relation symbol within a [`Signature`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RelId(pub u32);

/// Identifier of a weight symbol within a [`Signature`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct WeightId(pub u32);

#[derive(Clone, Debug)]
struct SymbolDecl {
    name: String,
    arity: usize,
}

/// A `Σ(w)` signature: named relation symbols and named weight symbols,
/// each with a fixed arity ≤ [`MAX_ARITY`].
///
/// Function symbols of the paper are represented by their graphs as
/// relations (the standard conversion the paper also uses when defining
/// Gaifman graphs); the compiler reintroduces functional structure where
/// it matters (degeneracy reduction, Lemma 37).
#[derive(Clone, Debug, Default)]
pub struct Signature {
    relations: Vec<SymbolDecl>,
    weights: Vec<SymbolDecl>,
    rel_by_name: FxHashMap<String, RelId>,
    weight_by_name: FxHashMap<String, WeightId>,
}

impl Signature {
    /// Empty signature.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a relation symbol; returns its id.
    ///
    /// # Panics
    /// Panics on duplicate names or arity > [`MAX_ARITY`].
    pub fn add_relation(&mut self, name: &str, arity: usize) -> RelId {
        assert!(arity <= MAX_ARITY, "arity {arity} exceeds {MAX_ARITY}");
        assert!(
            !self.rel_by_name.contains_key(name),
            "duplicate relation symbol {name:?}"
        );
        let id = RelId(self.relations.len() as u32);
        self.relations.push(SymbolDecl {
            name: name.to_owned(),
            arity,
        });
        self.rel_by_name.insert(name.to_owned(), id);
        id
    }

    /// Declare a weight symbol; returns its id.
    pub fn add_weight(&mut self, name: &str, arity: usize) -> WeightId {
        assert!(arity <= MAX_ARITY, "arity {arity} exceeds {MAX_ARITY}");
        assert!(
            !self.weight_by_name.contains_key(name),
            "duplicate weight symbol {name:?}"
        );
        let id = WeightId(self.weights.len() as u32);
        self.weights.push(SymbolDecl {
            name: name.to_owned(),
            arity,
        });
        self.weight_by_name.insert(name.to_owned(), id);
        id
    }

    /// Look up a relation by name.
    pub fn relation(&self, name: &str) -> Option<RelId> {
        self.rel_by_name.get(name).copied()
    }

    /// Look up a weight symbol by name.
    pub fn weight(&self, name: &str) -> Option<WeightId> {
        self.weight_by_name.get(name).copied()
    }

    /// Name of a relation.
    pub fn relation_name(&self, id: RelId) -> &str {
        &self.relations[id.0 as usize].name
    }

    /// Arity of a relation.
    pub fn relation_arity(&self, id: RelId) -> usize {
        self.relations[id.0 as usize].arity
    }

    /// Name of a weight symbol.
    pub fn weight_name(&self, id: WeightId) -> &str {
        &self.weights[id.0 as usize].name
    }

    /// Arity of a weight symbol.
    pub fn weight_arity(&self, id: WeightId) -> usize {
        self.weights[id.0 as usize].arity
    }

    /// Number of relation symbols.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Number of weight symbols.
    pub fn num_weights(&self) -> usize {
        self.weights.len()
    }

    /// All relation ids.
    pub fn relation_ids(&self) -> impl Iterator<Item = RelId> {
        (0..self.relations.len() as u32).map(RelId)
    }

    /// All weight ids.
    pub fn weight_ids(&self) -> impl Iterator<Item = WeightId> {
        (0..self.weights.len() as u32).map(WeightId)
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Σ = {{")?;
        for (i, r) in self.relations.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}/{}", r.name, r.arity)?;
        }
        write!(f, "}}, w = {{")?;
        for (i, w) in self.weights.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}/{}", w.name, w.arity)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_lookup() {
        let mut sig = Signature::new();
        let e = sig.add_relation("E", 2);
        let w = sig.add_weight("w", 2);
        assert_eq!(sig.relation("E"), Some(e));
        assert_eq!(sig.weight("w"), Some(w));
        assert_eq!(sig.relation_arity(e), 2);
        assert_eq!(sig.weight_name(w), "w");
        assert_eq!(sig.relation("F"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate relation")]
    fn duplicate_relation_panics() {
        let mut sig = Signature::new();
        sig.add_relation("E", 2);
        sig.add_relation("E", 1);
    }

    #[test]
    fn display_is_readable() {
        let mut sig = Signature::new();
        sig.add_relation("E", 2);
        sig.add_weight("w", 1);
        assert_eq!(format!("{sig}"), "Σ = {E/2}, w = {w/1}");
    }
}
