//! # sparse-agg
//!
//! A complete Rust implementation of *Aggregate Queries on Sparse
//! Databases* (Szymon Toruńczyk, PODS 2020): semiring-weighted queries
//! compiled into circuits with permanent gates over bounded-expansion
//! databases, with
//!
//! * linear-time circuit compilation (Theorem 6),
//! * dynamic evaluation with `O(log n)` / `O(1)` updates (Theorem 8),
//! * provenance enumerators over the free semiring (Theorem 22),
//! * constant-delay, dynamic first-order answer enumeration (Theorem 24),
//! * nested multi-semiring queries `FOG[C]` (Theorem 26).
//!
//! This crate is a facade re-exporting the workspace members; see
//! `README.md` for a tour and `DESIGN.md` for the architecture.
//!
//! ## Quickstart
//!
//! ```
//! use sparse_agg::prelude::*;
//! use std::sync::Arc;
//!
//! // A directed graph with an edge cost, as a relational structure.
//! let mut sig = Signature::new();
//! let e = sig.add_relation("E", 2);
//! let cost = sig.add_weight("cost", 2);
//! let mut a = Structure::new(Arc::new(sig), 4);
//! for (u, v) in [(0, 1), (1, 2), (2, 0), (0, 3)] {
//!     a.insert(e, &[u, v]);
//! }
//!
//! // f = Σ_{x,y,z} [E(x,y) ∧ E(y,z) ∧ E(z,x)] — triangle count.
//! let (x, y, z) = (Var(0), Var(1), Var(2));
//! let f = Formula::Rel(e, vec![x, y])
//!     .and(Formula::Rel(e, vec![y, z]))
//!     .and(Formula::Rel(e, vec![z, x]));
//! let expr: Expr<Nat> = Expr::Bracket(f).sum_over([x, y, z]);
//!
//! let nf = normalize(&expr).unwrap();
//! let compiled = compile(&a, &nf, &CompileOptions::default()).unwrap();
//! let weights = WeightedStructure::<Nat>::new(Arc::new(a));
//! let engine = GeneralEngine::new(compiled, &weights);
//! // the directed 3-cycle is counted once per cyclic rotation of (x,y,z)
//! assert_eq!(*engine.value(), Nat(3));
//! # let _ = cost;
//! ```

pub use agq_baseline as baseline;
pub use agq_circuit as circuit;
pub use agq_core as core_engine;
pub use agq_enumerate as enumerate;
pub use agq_graph as graph;
pub use agq_logic as logic;
pub use agq_nested as nested;
pub use agq_perm as perm;
pub use agq_persist as persist;
pub use agq_semiring as semiring;
pub use agq_structure as structure;

/// One-stop imports for applications.
pub mod prelude {
    pub use agq_core::{
        compile, eliminate_quantifiers, CompileError, CompileOptions, FiniteEngine, GeneralEngine,
        QueryEngine, RingEngine,
    };
    pub use agq_enumerate::{AnswerIndex, ProvenanceIndex};
    pub use agq_logic::{normalize, parse_expr, parse_formula, Expr, Formula, Var};
    pub use agq_nested::{
        Connective, MultiWeights, NestedEvaluator, NestedFormula, SemiringTag, Value,
    };
    pub use agq_semiring::{
        Bool, Gen, Int, MaxF, MaxPlus, MinMax, MinPlus, Monomial, Nat, Poly, Rat, Ring, Semiring,
    };
    pub use agq_structure::{Signature, Structure, WeightedStructure};
}
