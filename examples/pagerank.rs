//! Example 9 of the paper: one PageRank round as a weighted query.
//!
//! ```text
//! f(x) = (1−d)/N + d · Σ_y [E(y,x)] · w(y) · l(y)
//! ```
//!
//! where `w(y)` is the previous-round rank and `l(y) = 1/outdeg(y)`
//! (division is not part of the language, so — as in the paper — the
//! reciprocal is itself a weight). Theorem 8 gives a data structure with
//! linear preprocessing, constant-time rank queries, and constant-time
//! maintenance when a rank weight changes: a full round is `n` queries
//! plus `n` weight writes, and stays exact in ℚ or fast in `f64`.
//!
//! Run with `cargo run --release --example pagerank`.

use sparse_agg::graph::generators;
use sparse_agg::prelude::*;
use sparse_agg::semiring::F64;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let n = 5_000usize;
    let d = 0.85f64;
    let g = generators::gnm(n, 3 * n, 11);

    let mut sig = Signature::new();
    let e = sig.add_relation("E", 2);
    let w = sig.add_weight("w", 1); // previous-round rank
    let l = sig.add_weight("l", 1); // reciprocal out-degree
    let mut a = Structure::new(Arc::new(sig), n);
    // orient every undirected edge both ways to make a link graph
    for (u, v) in g.edges() {
        a.insert(e, &[u, v]);
        a.insert(e, &[v, u]);
    }
    let a = Arc::new(a);
    let outdeg: Vec<usize> = (0..n as u32).map(|v| g.neighbors(v).len()).collect();

    // f(x) = Σ_y [E(y,x)] · w(y) · l(y)   (the damping affine map is
    // applied outside the semiring expression, once per query)
    let (x, y) = (Var(0), Var(1));
    let expr: Expr<F64> = Expr::Mul(vec![
        Expr::Bracket(Formula::Rel(e, vec![y, x])),
        Expr::Weight(w, vec![y]),
        Expr::Weight(l, vec![y]),
    ])
    .sum_over([y]);

    let t0 = Instant::now();
    let nf = normalize(&expr).unwrap();
    let compiled = compile(&a, &nf, &CompileOptions::default()).unwrap();
    println!(
        "compiled in {:?} ({} gates for {} nodes / {} links)",
        t0.elapsed(),
        compiled.report.stats.num_gates,
        n,
        a.relation(e).len()
    );

    let mut weights: WeightedStructure<F64> = WeightedStructure::new(a.clone());
    for v in 0..n as u32 {
        weights.set(w, &[v], F64(1.0 / n as f64));
        let deg = outdeg[v as usize].max(1) as f64;
        weights.set(l, &[v], F64(1.0 / deg));
    }
    // F64 is a ring: constant-time queries and updates.
    let mut engine = RingEngine::new(compiled, &weights);

    let t0 = Instant::now();
    let rounds = 20;
    let mut rank: Vec<f64> = vec![1.0 / n as f64; n];
    for _ in 0..rounds {
        // query all nodes against the current weights…
        let mut next = vec![0.0f64; n];
        for v in 0..n as u32 {
            let s = engine.query(&[v]).0;
            next[v as usize] = (1.0 - d) / n as f64 + d * s;
        }
        // …then push the new round into the engine (constant per write)
        for v in 0..n as u32 {
            engine.set_weight(w, &[v], F64(next[v as usize]));
        }
        rank = next;
    }
    let elapsed = t0.elapsed();
    let total: f64 = rank.iter().sum();
    let mut top: Vec<(usize, f64)> = rank.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!(
        "{rounds} rounds in {:?} ({:.1} ns per node-round); Σ rank = {:.6}",
        elapsed,
        elapsed.as_nanos() as f64 / (rounds * n) as f64,
        total
    );
    println!("top-5 nodes by rank:");
    for (v, r) in top.iter().take(5) {
        println!("  node {v:>5}: {r:.6} (out-degree {})", outdeg[*v]);
    }

    // Cross-check one node against a direct neighbor-sum.
    let v0 = top[0].0 as u32;
    let direct: f64 = g
        .neighbors(v0)
        .iter()
        .map(|&u| rank[u as usize] / outdeg[u as usize].max(1) as f64)
        .sum::<f64>();
    let via_engine = engine.query(&[v0]).0;
    assert!(
        (direct - via_engine).abs() < 1e-9,
        "engine and direct sums agree"
    );
    println!("cross-check at node {v0}: engine {via_engine:.9} = direct {direct:.9} ✓");
}
