//! The text surface syntax: write queries as strings, run them in any
//! semiring.
//!
//! Run with `cargo run --release --example parser_demo`.

use sparse_agg::graph::generators;
use sparse_agg::prelude::*;
use std::sync::Arc;

fn main() {
    let n = 1_500;
    let g = generators::planar_like(50, 30, 8);

    let mut sig = Signature::new();
    sig.add_relation("E", 2);
    sig.add_weight("w", 1);
    sig.add_weight("c", 2);
    let e = sig.relation("E").unwrap();
    let w = sig.weight("w").unwrap();
    let c = sig.weight("c").unwrap();

    let mut a = Structure::new(Arc::new(sig), n);
    for (u, v) in g.edges() {
        a.insert(e, &[u, v]);
        a.insert(e, &[v, u]);
    }
    let a = Arc::new(a);

    // ---- counting in ℕ ------------------------------------------------
    let (expr, _) = parse_expr::<Nat>(
        "sum x,y,z. [E(x,y) & E(y,z) & !E(z,x) & !(z = x)]",
        a.signature(),
        |s| s.parse().ok().map(Nat),
    )
    .unwrap();
    let nf = normalize(&expr).unwrap();
    let compiled = compile(&a, &nf, &CompileOptions::default()).unwrap();
    let weights: WeightedStructure<Nat> = WeightedStructure::new(a.clone());
    let engine = GeneralEngine::new(compiled, &weights);
    println!("open 2-paths (wedges that don't close): {}", engine.value());

    // ---- the same text, optimized in (min,+) --------------------------
    let (expr, vars) =
        parse_expr::<MinPlus>("sum y. [E(x,y)] * c(x,y) * w(y)", a.signature(), |s| {
            s.parse().ok().map(MinPlus)
        })
        .unwrap();
    println!(
        "parsed f({}) with free variable(s) {:?}",
        vars.names().join(","),
        normalize(&expr).unwrap().free_vars()
    );
    let nf = normalize(&expr).unwrap();
    let compiled = compile(&a, &nf, &CompileOptions::default()).unwrap();
    let mut weights: WeightedStructure<MinPlus> = WeightedStructure::new(a.clone());
    for v in 0..n as u32 {
        weights.set(w, &[v], MinPlus(u64::from(v % 17) + 1));
    }
    let tuples: Vec<_> = a.relation(e).iter().cloned().collect();
    for t in &tuples {
        let s = t.as_slice();
        weights.set(c, s, MinPlus(u64::from((s[0] ^ s[1]) % 23) + 1));
    }
    let mut engine = GeneralEngine::new(compiled, &weights);
    for probe in [0u32, 7, 100] {
        println!(
            "  cheapest outgoing step from {probe}: {}",
            engine.query(&[probe])
        );
    }

    // ---- formulas for enumeration -------------------------------------
    let (phi, _) = parse_formula("E(x,y) & E(y,z) & x != z", a.signature()).unwrap();
    let ix =
        sparse_agg::enumerate::AnswerIndex::build(&a, &phi, &CompileOptions::default()).unwrap();
    println!(
        "2-paths in the graph: {} (constant-delay enumerable)",
        ix.count()
    );
}
