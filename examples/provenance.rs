//! Example 21 / result (C): why does this query answer hold?
//!
//! Assigns each edge a unique provenance identifier and evaluates the
//! triangle expression `f(x) = Σ_{y,z} w(x,y)·w(y,z)·w(z,x)` in the free
//! semiring. The answer at a node is a formal sum with one monomial per
//! triangle through it — enumerated lazily with constant delay, never
//! materialized (Theorem 22).
//!
//! Run with `cargo run --release --example provenance`.

use sparse_agg::enumerate::ProvenanceIndex;
use sparse_agg::graph::generators;
use sparse_agg::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // The paper's Example 21 graph first: a,b,c,d with edges ab bc ca bd da.
    let mut sig = Signature::new();
    let e = sig.add_relation("E", 2);
    let w = sig.add_weight("w", 2);
    let mut small = Structure::new(Arc::new(sig), 4);
    let names = ["a", "b", "c", "d"];
    for (u, v) in [(0u32, 1u32), (1, 2), (2, 0), (1, 3), (3, 0)] {
        small.insert(e, &[u, v]);
    }
    let (x, y, z) = (Var(0), Var(1), Var(2));
    let f: Expr<Nat> = Expr::Mul(vec![
        Expr::Weight(w, vec![x, y]),
        Expr::Weight(w, vec![y, z]),
        Expr::Weight(w, vec![z, x]),
    ])
    .sum_over([y, z]);

    let mut ix = ProvenanceIndex::build(&small, &f, &CompileOptions::default(), |_, t| {
        vec![vec![Gen((t[0] * 10 + t[1]) as u64)]]
    })
    .unwrap();
    println!("Example 21 — provenance of the triangle query at node a:");
    let mut it = ix.enumerate_at(&[0]);
    while let Some(m) = it.next() {
        let pretty: Vec<String> = m
            .iter()
            .map(|g| {
                let id = g.0;
                format!(
                    "e_{}{}",
                    names[(id / 10) as usize],
                    names[(id % 10) as usize]
                )
            })
            .collect();
        println!("  {}", pretty.join("·"));
    }
    drop(it);

    // Scale: a larger sparse graph. The full provenance polynomial would
    // have one term per triangle; we only pay for the terms we look at.
    let n = 3_000usize;
    let g = generators::gnm(n, 3 * n, 5);
    let mut sig = Signature::new();
    let e = sig.add_relation("E", 2);
    let w = sig.add_weight("w", 2);
    let mut big = Structure::new(Arc::new(sig), n);
    for (u, v) in g.edges() {
        big.insert(e, &[u, v]);
        big.insert(e, &[v, u]);
    }
    let t0 = Instant::now();
    // closed variant: provenance of *all* directed triangles
    let f_all: Expr<Nat> = Expr::Mul(vec![
        Expr::Bracket(Formula::Rel(e, vec![x, y])),
        Expr::Weight(w, vec![x, y]),
        Expr::Weight(w, vec![y, z]),
        Expr::Weight(w, vec![z, x]),
    ])
    .sum_over([x, y, z]);
    let ix = ProvenanceIndex::build(&big, &f_all, &CompileOptions::default(), |_, t| {
        vec![vec![Gen(((t[0] as u64) << 32) | t[1] as u64)]]
    })
    .unwrap();
    println!(
        "\nbuilt provenance index for n={n} in {:?} (never materializes the polynomial)",
        t0.elapsed()
    );
    let t0 = Instant::now();
    let mut it = ix.enumerate();
    let mut first_ten = 0;
    let mut max_delay = std::time::Duration::ZERO;
    let mut last = Instant::now();
    let mut total = 0u64;
    while let Some(_m) = it.next() {
        let now = Instant::now();
        max_delay = max_delay.max(now - last);
        last = now;
        total += 1;
        if first_ten < 3 {
            first_ten += 1;
        }
        if total >= 10_000 {
            break; // demonstrate laziness: stop early at no cost
        }
    }
    println!(
        "walked {total} provenance monomials in {:?} (max single delay {:?})",
        t0.elapsed(),
        max_delay
    );
}
