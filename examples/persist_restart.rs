//! Crash-safe elastic restart: plan + snapshot + WAL round-trip.
//!
//! Builds a dynamic enumeration engine over a sparse graph, saves its
//! compiled plan (`.agqplan`) and state snapshot (`.agqsnap`), journals
//! a stream of update batches through the checksummed WAL
//! (`wal.agqlog`), then *drops the engine* — simulating a crash — and
//! recovers a fresh engine from the three files alone. The recovered
//! engine reproduces the live engine's answer stream byte for byte:
//! same count, same enumeration order, same `answer(k)` ranks.
//!
//! Run with `cargo run --release --example persist_restart`.

use sparse_agg::enumerate::EnumQueryEngine;
use sparse_agg::graph::generators;
use sparse_agg::perm::SegTreePerm;
use sparse_agg::persist::{attach_file_wal, recover_engine, save_engine};
use sparse_agg::prelude::*;
use sparse_agg::semiring::F64;
use std::sync::Arc;
use std::time::Instant;

use sparse_agg::core_engine::TupleUpdate;

type Engine = EnumQueryEngine<F64, SegTreePerm<F64>>;

fn main() {
    let n = 8_000;
    let g = generators::gnm(n, 2 * n, 7);
    let mut sig = Signature::new();
    let e = sig.add_relation("E", 2);
    let mut a = Structure::new(Arc::new(sig), n);
    for (u, v) in g.edges() {
        a.insert(e, &[u, v]);
        a.insert(e, &[v, u]);
    }
    let edges: Vec<Vec<u32>> = a
        .relation(e)
        .iter()
        .map(|t| t.as_slice().to_vec())
        .collect();
    let a = Arc::new(a);

    // φ(x,y,z) = E(x,y) ∧ E(y,z) ∧ x ≠ z — directed 2-paths.
    let (x, y, z) = (Var(0), Var(1), Var(2));
    let phi = Formula::Rel(e, vec![x, y])
        .and(Formula::Rel(e, vec![y, z]))
        .and(Formula::neq(x, z));

    let t0 = Instant::now();
    let mut live = Engine::build_dynamic(&a, &phi, &CompileOptions::default()).unwrap();
    let t_compile = t0.elapsed();
    println!(
        "compiled in {t_compile:?}: {} answers at LSN {}",
        live.count(),
        live.last_lsn()
    );

    // Persist the plan and a point-in-time snapshot.
    let dir = std::env::temp_dir().join(format!("agq_restart_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (plan, snap, wal) = (
        dir.join("q.agqplan"),
        dir.join("q.agqsnap"),
        dir.join("wal.agqlog"),
    );
    let stats = save_engine(&live, &plan, &snap).unwrap();
    println!(
        "saved plan ({} B) + snapshot ({} B) at LSN {}",
        stats.plan_bytes,
        stats.snapshot_bytes,
        live.last_lsn()
    );

    // Journal 32 batches of deterministic edge flips through the WAL.
    attach_file_wal(&mut live, &wal).unwrap();
    let mut present = vec![true; edges.len()];
    let mut s = 0x9e3779b97f4a7c15u64;
    for _ in 0..32 {
        let batch: Vec<TupleUpdate> = (0..8)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let ei = (s % edges.len() as u64) as usize;
                present[ei] = !present[ei];
                TupleUpdate {
                    rel: e,
                    tuple: edges[ei].clone(),
                    present: present[ei],
                }
            })
            .collect();
        live.apply_batch(&batch).unwrap();
    }
    live.detach_wal();
    println!(
        "journaled 32 batches: {} answers at LSN {} ({} B of WAL)",
        live.count(),
        live.last_lsn(),
        std::fs::metadata(&wal).unwrap().len()
    );

    // "Crash": capture the expected stream, then drop the engine.
    let expected_count = live.count();
    let expected_lsn = live.last_lsn();
    let expected: Vec<Vec<u32>> = {
        let mut out = Vec::new();
        let mut it = live.enumerate();
        while let Some(t) = it.next() {
            out.push(t);
        }
        out
    };
    drop(live);

    // Restart from the three files alone.
    let t0 = Instant::now();
    let (rec, report) = recover_engine::<F64, SegTreePerm<F64>>(&plan, &snap, &wal).unwrap();
    let t_recover = t0.elapsed();
    println!(
        "recovered in {t_recover:?} ({:.1}× faster than compiling): \
         snapshot LSN {}, {} batches replayed{}",
        t_compile.as_secs_f64() / t_recover.as_secs_f64(),
        report.snapshot_lsn,
        report.batches_replayed,
        if report.torn_tail || report.corrupt_tail {
            " (damaged tail truncated)"
        } else {
            ""
        }
    );

    assert_eq!(rec.count(), expected_count);
    assert_eq!(rec.last_lsn(), expected_lsn);
    let mut it = rec.enumerate();
    for (k, want) in expected.iter().enumerate() {
        let got = it.next().expect("stream ends early");
        assert_eq!(&got, want, "answer {k} diverged");
    }
    assert!(it.next().is_none(), "stream runs long");
    println!(
        "recovered stream is byte-identical: {} answers in the same order at LSN {}",
        expected_count, expected_lsn
    );

    std::fs::remove_dir_all(&dir).ok();
}
