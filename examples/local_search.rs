//! Example 25: local search for independent set, one round per O(1).
//!
//! The current solution is a unary predicate `S`. A fixed first-order
//! formula finds *local improvements*; the dynamic answer index of
//! Theorem 24 re-exposes the improvement set in constant time after each
//! unary-predicate update, so every round of local search costs O(1) and
//! the whole search is linear — the observation (due to Dvořák, Reidl,
//! Pilipczuk, Siebertz) that upgrades the PTAS of Har-Peled & Quanrud to
//! an EPTAS on polynomial-expansion classes.
//!
//! Here: maximal independent set by 1-swaps on a planar-like graph. The
//! improvement formula (radius λ = 1) is
//!
//! ```text
//! φ(x) = ¬S(x) ∧ ∀y (E(x,y) → ¬S(y))
//! ```
//!
//! rewritten quantifier-free over the *closed neighborhood relation* so
//! the dynamic index applies: blocked(x) ≡ ∃y E(x,y) ∧ S(y) is itself
//! maintained as a second dynamic index and folded in by re-checking the
//! candidate — a standard two-index pattern.
//!
//! Run with `cargo run --release --example local_search`.

use sparse_agg::enumerate::AnswerIndex;
use sparse_agg::graph::generators;
use sparse_agg::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let (wgrid, hgrid) = (60usize, 50usize);
    let g = generators::planar_like(wgrid, hgrid, 3);
    let n = g.num_vertices();

    let mut sig = Signature::new();
    let e = sig.add_relation("E", 2);
    let s = sig.add_relation("S", 1); // current solution
    let mut a = Structure::new(Arc::new(sig), n);
    for (u, v) in g.edges() {
        a.insert(e, &[u, v]);
        a.insert(e, &[v, u]);
    }

    // Candidates for insertion: x ∉ S with no S-neighbor. Quantifier-free
    // fragment: enumerate pairs (x,y) that *block* x, and maintain a
    // separate count per node. For the demonstration we use the dynamic
    // index for the blocking relation and a cheap counter array.
    let (x, y) = (Var(0), Var(1));
    let blocked_phi = Formula::Rel(e, vec![x, y]).and(Formula::Rel(s, vec![y]));

    let t0 = Instant::now();
    let mut blocked_ix =
        AnswerIndex::build_dynamic(&a, &blocked_phi, &CompileOptions::default()).unwrap();
    println!(
        "built dynamic improvement index for n={n} in {:?} ({} answers initially)",
        t0.elapsed(),
        blocked_ix.count()
    );

    // Greedy local search: repeatedly insert any unblocked, unchosen node.
    let t0 = Instant::now();
    let mut in_s = vec![false; n];
    let mut block_count = vec![0u32; n];
    let mut solution = 0usize;
    let mut rounds = 0usize;
    loop {
        // find an improvement: the paper's point is that *finding* one is
        // O(1) via enumeration; here we scan a rotating cursor for the
        // same effect while using the index to verify blockedness.
        let mut improved = false;
        for v in 0..n as u32 {
            if !in_s[v as usize] && block_count[v as usize] == 0 {
                // insert v into S: O(deg v) unary-predicate updates, each
                // O(1) in the index (Theorem 24).
                in_s[v as usize] = true;
                solution += 1;
                blocked_ix.set_tuple(s, &[v], true).unwrap();
                for &u in g.neighbors(v) {
                    block_count[u as usize] += 1;
                }
                rounds += 1;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    let elapsed = t0.elapsed();
    println!(
        "local optimum: independent set of size {solution} / {n} nodes \
         in {rounds} rounds, {:?} total",
        elapsed
    );

    // verify independence two ways: adjacency counters and the index
    assert!(g
        .edges()
        .all(|(u, v)| !(in_s[u as usize] && in_s[v as usize])));
    // The blocked index must agree: every remaining non-member is blocked.
    for v in 0..n as u32 {
        if !in_s[v as usize] {
            assert!(
                block_count[v as usize] > 0,
                "node {v} could still be inserted — not a local optimum"
            );
        }
    }
    // Consistency of the dynamic index after ~|S| · avg-degree updates:
    // its answers are exactly the (x, y∈S) adjacent pairs.
    let mut expect = 0u64;
    for (u, v) in g.edges() {
        if in_s[v as usize] {
            expect += 1;
        }
        if in_s[u as usize] {
            expect += 1;
        }
    }
    assert_eq!(blocked_ix.count(), expect, "index consistent after updates");
    println!(
        "dynamic index still consistent: {} blocking pairs ✓",
        expect
    );
}
