//! Result (D)/(E): constant-delay enumeration of query answers.
//!
//! Builds the Theorem 24 index for a path query on a sparse graph, walks
//! the first answers forward and backward (the iterator is
//! bidirectional), measures the per-answer delay as the input grows, and
//! finishes with a nested FOG[C] query whose Boolean answers are
//! enumerated through the same machinery (result E).
//!
//! Run with `cargo run --release --example enumerate_answers`.

use sparse_agg::enumerate::AnswerIndex;
use sparse_agg::graph::generators;
use sparse_agg::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn build_graph(n: usize, seed: u64) -> (Structure, sparse_agg::structure::RelId) {
    let g = generators::gnm(n, 2 * n, seed);
    let mut sig = Signature::new();
    let e = sig.add_relation("E", 2);
    sig.add_weight("w", 1);
    let mut a = Structure::new(Arc::new(sig), n);
    for (u, v) in g.edges() {
        a.insert(e, &[u, v]);
        a.insert(e, &[v, u]);
    }
    (a, e)
}

fn main() {
    println!("— directed 2-paths φ(x,y,z) = E(x,y) ∧ E(y,z) ∧ x≠z —");
    for n in [1_000usize, 2_000, 4_000] {
        let (a, e) = build_graph(n, 7);
        let (x, y, z) = (Var(0), Var(1), Var(2));
        let phi = Formula::Rel(e, vec![x, y])
            .and(Formula::Rel(e, vec![y, z]))
            .and(Formula::neq(x, z));
        let t0 = Instant::now();
        let ix = AnswerIndex::build(&a, &phi, &CompileOptions::default()).unwrap();
        let build = t0.elapsed();
        let total = ix.count();
        // measure the maximum single-step delay over the whole output
        let mut it = ix.iter();
        let mut max_delay = std::time::Duration::ZERO;
        let mut produced = 0u64;
        loop {
            let t = Instant::now();
            let step = it.next();
            max_delay = max_delay.max(t.elapsed());
            if step.is_none() {
                break;
            }
            produced += 1;
        }
        assert_eq!(produced, total);
        println!(
            "n={n:>6}: build {build:>10?}  answers {total:>8}  \
             max per-answer delay {max_delay:?}"
        );
    }

    // Bidirectional cursor demonstration.
    let (a, e) = build_graph(500, 9);
    let phi = Formula::Rel(e, vec![Var(0), Var(1)]);
    let ix = AnswerIndex::build(&a, &phi, &CompileOptions::default()).unwrap();
    let mut it = ix.iter();
    let first = it.next();
    let second = it.next();
    let back = it.prev();
    assert_eq!(first, back, "prev undoes next");
    println!("\nbidirectional walk: first {first:?}, second {second:?}, prev back to {back:?}");

    // Result (E): a nested Boolean query — vertices whose out-neighbor
    // count exceeds 4 — through FOG[C] + answer enumeration.
    let (a, e) = build_graph(2_000, 21);
    let u = {
        // add a universe guard relation on a copy
        let mut sig = (**a.signature()).clone();
        let u = sig.add_relation("U", 1);
        let mut b = Structure::new(Arc::new(sig), a.domain_size());
        for r in a.signature().relation_ids() {
            for t in a.relation(r).iter() {
                b.insert(r, t.as_slice());
            }
        }
        for v in 0..b.domain_size() as u32 {
            b.insert(u, &[v]);
        }
        (b, u)
    };
    let (b, u_rel) = u;
    let (x, y) = (Var(0), Var(1));
    let deg = NestedFormula::Sum(
        vec![y],
        Box::new(NestedFormula::Bracket(
            Box::new(NestedFormula::Rel(e, vec![x, y])),
            SemiringTag::N,
        )),
    );
    let gt4 = Connective::new(
        "deg>4",
        vec![SemiringTag::N],
        SemiringTag::B,
        |vals| match &vals[0] {
            Value::N(n) => Value::B(Bool(n.0 > 4)),
            _ => unreachable!(),
        },
    );
    let hubs = NestedFormula::Guarded {
        guard: u_rel,
        guard_args: vec![x],
        connective: gt4,
        args: vec![deg],
    };
    let mw = MultiWeights::new();
    let ev = NestedEvaluator::build(&b, &mw, &hubs, &CompileOptions::default()).unwrap();
    let ix = ev.enumerate_answers(&CompileOptions::default()).unwrap();
    let mut it = ix.iter();
    let mut hubs_found = 0;
    while it.next().is_some() {
        hubs_found += 1;
    }
    println!(
        "\nFOG[C] result (E): {hubs_found} vertices with out-degree > 4 \
         (of {}), enumerated with constant delay",
        b.domain_size()
    );
}
