//! Quickstart: one query, five semirings.
//!
//! Compiles the triangle query of the paper's introduction
//!
//! ```text
//! f = Σ_{x,y,z} [E(x,y) ∧ E(y,z) ∧ E(z,x)] · w(x,y) · w(y,z) · w(z,x)
//! ```
//!
//! once per semiring over the same random sparse graph and reads off:
//! triangle count (bag semantics, ℕ), minimum-cost triangle (tropical),
//! bottleneck triangle (min-max), existence (B), and a ±1-signed count
//! (ℤ, with constant-time updates).
//!
//! Run with `cargo run --release --example quickstart`.

use sparse_agg::graph::generators;
use sparse_agg::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let n = 2_000;
    let g = generators::gnm(n, 2 * n, 42);

    // Relational structure: directed edges both ways along each graph edge.
    let mut sig = Signature::new();
    let e = sig.add_relation("E", 2);
    let w = sig.add_weight("w", 2);
    let mut a = Structure::new(Arc::new(sig), n);
    for (u, v) in g.edges() {
        a.insert(e, &[u, v]);
        a.insert(e, &[v, u]);
    }
    let a = Arc::new(a);

    // The triangle expression (shared across semirings as an AST shape).
    let (x, y, z) = (Var(0), Var(1), Var(2));
    let phi = Formula::Rel(e, vec![x, y])
        .and(Formula::Rel(e, vec![y, z]))
        .and(Formula::Rel(e, vec![z, x]));
    macro_rules! triangle_expr {
        ($S:ty) => {{
            let expr: Expr<$S> = Expr::Mul(vec![
                Expr::Bracket(phi.clone()),
                Expr::Weight(w, vec![x, y]),
                Expr::Weight(w, vec![y, z]),
                Expr::Weight(w, vec![z, x]),
            ])
            .sum_over([x, y, z]);
            expr
        }};
    }

    let t0 = Instant::now();
    let expr_nat = triangle_expr!(Nat);
    let nf = normalize(&expr_nat).unwrap();
    let compiled = compile(&a, &nf, &CompileOptions::default()).unwrap();
    let stats = compiled.report.stats;
    println!(
        "compiled in {:?}: {} gates, depth {}, ≤{} perm rows, {} colors, forest depth ≤ {}",
        t0.elapsed(),
        stats.num_gates,
        stats.depth,
        stats.max_perm_rows,
        compiled.report.num_colors,
        compiled.report.max_forest_depth,
    );

    // ℕ: number of directed triangles (each counted once per orientation).
    let mut weights_nat: WeightedStructure<Nat> = WeightedStructure::new(a.clone());
    set_all(&a, e, |t| {
        weights_nat.set(w, t, Nat(1));
    });
    let engine = GeneralEngine::new(compiled.clone(), &weights_nat);
    println!("ℕ   triangle count (bag semantics):   {}", engine.value());

    // Tropical: cheapest triangle under random edge costs.
    let expr_min = triangle_expr!(MinPlus);
    let nf_min = normalize(&expr_min).unwrap();
    let compiled_min = compile(&a, &nf_min, &CompileOptions::default()).unwrap();
    let mut weights_min: WeightedStructure<MinPlus> = WeightedStructure::new(a.clone());
    set_all(&a, e, |t| {
        let c = 1 + (t[0] as u64 * 31 + t[1] as u64 * 17) % 100;
        weights_min.set(w, t, MinPlus(c));
    });
    let engine_min = GeneralEngine::new(compiled_min, &weights_min);
    println!(
        "min+ cheapest triangle cost:          {}",
        engine_min.value()
    );

    // Bottleneck: minimize the heaviest edge of a triangle.
    let expr_mm = triangle_expr!(MinMax);
    let nf_mm = normalize(&expr_mm).unwrap();
    let compiled_mm = compile(&a, &nf_mm, &CompileOptions::default()).unwrap();
    let mut weights_mm: WeightedStructure<MinMax> = WeightedStructure::new(a.clone());
    set_all(&a, e, |t| {
        let c = 1 + (t[0] as u64 * 13 + t[1] as u64 * 7) % 100;
        weights_mm.set(w, t, MinMax(c));
    });
    let engine_mm = GeneralEngine::new(compiled_mm, &weights_mm);
    println!(
        "minmax bottleneck triangle:           {}",
        engine_mm.value()
    );

    // Boolean: does any triangle exist? (finite semiring ⇒ O(1) updates)
    let expr_b = triangle_expr!(Bool);
    let nf_b = normalize(&expr_b).unwrap();
    let compiled_b = compile(&a, &nf_b, &CompileOptions::default()).unwrap();
    let mut weights_b: WeightedStructure<Bool> = WeightedStructure::new(a.clone());
    set_all(&a, e, |t| {
        weights_b.set(w, t, Bool(true));
    });
    let engine_b = FiniteEngine::new(compiled_b, &weights_b);
    println!("B   triangle exists:                  {}", engine_b.value());

    // ℤ with dynamic updates: flip one edge's sign and watch the signed
    // count change in constant time per update.
    let expr_z = triangle_expr!(Int);
    let nf_z = normalize(&expr_z).unwrap();
    let compiled_z = compile(&a, &nf_z, &CompileOptions::default()).unwrap();
    let mut weights_z: WeightedStructure<Int> = WeightedStructure::new(a.clone());
    set_all(&a, e, |t| {
        weights_z.set(w, t, Int(1));
    });
    let mut engine_z = RingEngine::new(compiled_z, &weights_z);
    println!("ℤ   signed count before update:       {}", engine_z.value());
    let first_edge = a.relation(e).iter().next().copied();
    if let Some(t) = first_edge {
        let t0 = Instant::now();
        engine_z.set_weight(w, t.as_slice(), Int(-1));
        println!(
            "ℤ   after flipping w{:?} to −1:    {}   (update took {:?})",
            t,
            engine_z.value(),
            t0.elapsed()
        );
    }
}

fn set_all(a: &Arc<Structure>, e: sparse_agg::structure::RelId, mut f: impl FnMut(&[u32])) {
    let tuples: Vec<_> = a.relation(e).iter().cloned().collect();
    for t in tuples {
        f(t.as_slice());
    }
}
