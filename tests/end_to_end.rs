//! Cross-crate integration tests: the public API as a downstream user
//! sees it, exercising every theorem's pipeline end to end on non-trivial
//! inputs.

use sparse_agg::enumerate::{AnswerIndex, ProvenanceIndex};
use sparse_agg::graph::generators;
use sparse_agg::prelude::*;
use std::sync::Arc;

fn graph_structure(
    n: usize,
    m_factor: usize,
    seed: u64,
) -> (Arc<Structure>, sparse_agg::structure::RelId) {
    let g = generators::gnm(n, m_factor * n, seed);
    let mut sig = Signature::new();
    let e = sig.add_relation("E", 2);
    sig.add_weight("w", 1);
    sig.add_weight("c", 2);
    let mut a = Structure::new(Arc::new(sig), n);
    for (u, v) in g.edges() {
        a.insert(e, &[u, v]);
        a.insert(e, &[v, u]);
    }
    (Arc::new(a), e)
}

/// The count computed through the circuit equals a hand-rolled
/// neighbor-intersection triangle count on a mid-sized graph (no brute
/// force involved — independent algorithm).
#[test]
fn triangle_count_matches_combinatorial_algorithm() {
    let n = 600;
    let g = generators::gnm(n, 2 * n, 17);
    let (a, e) = {
        let mut sig = Signature::new();
        let e = sig.add_relation("E", 2);
        let mut a = Structure::new(Arc::new(sig), n);
        for (u, v) in g.edges() {
            a.insert(e, &[u, v]);
            a.insert(e, &[v, u]);
        }
        (Arc::new(a), e)
    };
    let (x, y, z) = (Var(0), Var(1), Var(2));
    let phi = Formula::Rel(e, vec![x, y])
        .and(Formula::Rel(e, vec![y, z]))
        .and(Formula::Rel(e, vec![z, x]));
    let expr: Expr<Nat> = Expr::Bracket(phi).sum_over([x, y, z]);
    let nf = normalize(&expr).unwrap();
    let compiled = compile(&a, &nf, &CompileOptions::default()).unwrap();
    let weights: WeightedStructure<Nat> = WeightedStructure::new(a.clone());
    let engine = GeneralEngine::new(compiled, &weights);

    // independent count: for each undirected triangle {u,v,w} there are
    // 6 directed (x,y,z) assignments in the symmetrized edge relation
    let mut undirected = 0u64;
    for u in 0..n as u32 {
        for &v in g.neighbors(u) {
            if v <= u {
                continue;
            }
            for &w in g.neighbors(v) {
                if w <= v {
                    continue;
                }
                if g.has_edge(u, w) {
                    undirected += 1;
                }
            }
        }
    }
    assert_eq!(*engine.value(), Nat(6 * undirected));
}

/// Theorem 8 + Theorem 24 agree with each other: the ℕ-count of answers
/// equals what the enumerator yields, on a graph large enough to exercise
/// the color decomposition.
#[test]
fn count_and_enumeration_agree_at_scale() {
    let (a, e) = graph_structure(400, 2, 23);
    let (x, y, z) = (Var(0), Var(1), Var(2));
    let phi = Formula::Rel(e, vec![x, y])
        .and(Formula::Rel(e, vec![y, z]))
        .and(Formula::neq(x, z));
    let ix = AnswerIndex::build(&a, &phi, &CompileOptions::default()).unwrap();
    let mut it = ix.iter();
    let mut n_enum = 0u64;
    let mut seen = std::collections::HashSet::new();
    while let Some(t) = it.next() {
        assert!(seen.insert(t.clone()), "duplicate answer {t:?}");
        n_enum += 1;
    }
    assert_eq!(n_enum, ix.count());
    // and every enumerated tuple is a real answer
    let mut it = ix.iter();
    while let Some(t) = it.next() {
        assert!(a.holds(e, &[t[0], t[1]]));
        assert!(a.holds(e, &[t[1], t[2]]));
        assert_ne!(t[0], t[2]);
    }
}

/// Provenance (Theorem 22) is consistent with counting: the number of
/// monomials of the triangle provenance equals the ℕ triangle count.
#[test]
fn provenance_counts_match() {
    let (a, e) = graph_structure(200, 2, 29);
    let c = a.signature().weight("c").unwrap();
    let (x, y, z) = (Var(0), Var(1), Var(2));
    let expr: Expr<Nat> = Expr::Mul(vec![
        Expr::Bracket(
            Formula::Rel(e, vec![x, y])
                .and(Formula::Rel(e, vec![y, z]))
                .and(Formula::Rel(e, vec![z, x])),
        ),
        Expr::Weight(c, vec![x, y]),
    ])
    .sum_over([x, y, z]);
    let ix = ProvenanceIndex::build(&a, &expr, &CompileOptions::default(), |_, t| {
        vec![vec![Gen(((t[0] as u64) << 32) | t[1] as u64)]]
    })
    .unwrap();
    let mut it = ix.enumerate();
    let mut monomials = 0u64;
    while it.next().is_some() {
        monomials += 1;
    }
    // count triangles with the Nat engine
    let phi = Formula::Rel(e, vec![x, y])
        .and(Formula::Rel(e, vec![y, z]))
        .and(Formula::Rel(e, vec![z, x]));
    let cnt: Expr<Nat> = Expr::Bracket(phi).sum_over([x, y, z]);
    let nf = normalize(&cnt).unwrap();
    let compiled = compile(&a, &nf, &CompileOptions::default()).unwrap();
    let weights: WeightedStructure<Nat> = WeightedStructure::new(a.clone());
    let engine = GeneralEngine::new(compiled, &weights);
    assert_eq!(monomials, engine.value().0);
}

/// Different graph classes flow through the same pipeline.
#[test]
fn works_across_graph_classes() {
    let shapes: Vec<(&str, sparse_agg::graph::Graph)> = vec![
        ("forest", generators::random_forest(300, 3)),
        ("grid", generators::grid(15, 20)),
        ("planar-like", generators::planar_like(14, 14, 4)),
        ("bounded-degree", generators::bounded_degree(300, 4, 5)),
        ("path", generators::path(300)),
        ("star", generators::star(200)),
    ];
    for (name, g) in shapes {
        let n = g.num_vertices();
        let mut sig = Signature::new();
        let e = sig.add_relation("E", 2);
        let mut a = Structure::new(Arc::new(sig), n);
        for (u, v) in g.edges() {
            a.insert(e, &[u, v]);
            a.insert(e, &[v, u]);
        }
        let (x, y) = (Var(0), Var(1));
        let expr: Expr<Nat> = Expr::Bracket(Formula::Rel(e, vec![x, y])).sum_over([x, y]);
        let nf = normalize(&expr).unwrap();
        let compiled = compile(&a, &nf, &CompileOptions::default())
            .unwrap_or_else(|err| panic!("{name}: {err}"));
        let weights: WeightedStructure<Nat> = WeightedStructure::new(Arc::new(a));
        let engine = GeneralEngine::new(compiled, &weights);
        assert_eq!(engine.value().0, 2 * g.num_edges() as u64, "{name}");
    }
}

/// The non-sparse counterexample: an expander-ish graph under a tight
/// depth cap fails with a structured error instead of a wrong answer or
/// a blow-up. (Dense cliques do *not* trigger the cap — they get many
/// colors, so small color sets stay shallow; what hurts is moderate
/// degree with long induced paths.)
#[test]
fn expander_hits_tight_depth_cap() {
    let g = generators::bounded_degree(300, 3, 7);
    let mut sig = Signature::new();
    let e = sig.add_relation("E", 2);
    let mut a = Structure::new(Arc::new(sig), 300);
    for (u, v) in g.edges() {
        a.insert(e, &[u, v]);
    }
    let (x, y) = (Var(0), Var(1));
    let expr: Expr<Nat> = Expr::Bracket(Formula::Rel(e, vec![x, y])).sum_over([x, y]);
    let nf = normalize(&expr).unwrap();
    let opts = CompileOptions {
        depth_cap: 1,
        ..CompileOptions::default()
    };
    match compile(&a, &nf, &opts) {
        Err(CompileError::DepthCapExceeded { depth, cap }) => {
            assert!(depth > cap);
        }
        other => panic!(
            "expected depth-cap error, got {:?}",
            other.map(|c| c.report)
        ),
    }
}

/// Full dynamic loop: enumeration index under a long random update
/// sequence on a mid-sized graph, spot-checked against relation scans.
#[test]
fn dynamic_index_long_run() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let (a, e) = graph_structure(150, 2, 31);
    let mut shadow = (*a).clone();
    let (x, y) = (Var(0), Var(1));
    let phi = Formula::Rel(e, vec![x, y]);
    let mut ix = AnswerIndex::build_dynamic(&a, &phi, &CompileOptions::default()).unwrap();
    let tuples: Vec<[u32; 2]> = a
        .relation(e)
        .iter()
        .map(|t| [t.as_slice()[0], t.as_slice()[1]])
        .collect();
    let mut rng = SmallRng::seed_from_u64(91);
    for _ in 0..300 {
        let t = tuples[rng.gen_range(0..tuples.len())];
        let present = rng.gen_bool(0.5);
        if present {
            shadow.insert(e, &t);
        } else {
            shadow.remove(e, &t);
        }
        ix.set_tuple(e, &t, present).unwrap();
        assert_eq!(ix.count(), shadow.relation(e).len() as u64);
    }
}
