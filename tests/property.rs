//! Property-based tests (proptest) over the core invariants:
//! semiring laws, permanent identities, dynamic-structure consistency,
//! normalization soundness, and pipeline-vs-baseline agreement on
//! arbitrary instances.

use proptest::prelude::*;
use sparse_agg::baseline;
use sparse_agg::perm::{perm_naive, perm_streaming, ColMatrix, FinitePerm, RingPerm, SegTreePerm};
use sparse_agg::prelude::*;
use sparse_agg::semiring::laws;
use std::sync::Arc;

// ---------------------------------------------------------------
// Semiring laws on arbitrary samples
// ---------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn nat_laws(xs in proptest::collection::vec(0u64..50, 1..6)) {
        let samples: Vec<Nat> = xs.into_iter().map(Nat).collect();
        laws::check_semiring_laws(&samples);
    }

    #[test]
    fn int_ring_laws(xs in proptest::collection::vec(-20i64..20, 1..6)) {
        let samples: Vec<Int> = xs.into_iter().map(Int).collect();
        laws::check_semiring_laws(&samples);
        laws::check_ring_laws(&samples);
    }

    #[test]
    fn rat_laws(pairs in proptest::collection::vec((-9i64..9, 1i64..9), 1..5)) {
        let samples: Vec<Rat> = pairs.into_iter().map(|(n, d)| Rat::new(n, d)).collect();
        laws::check_semiring_laws(&samples);
        laws::check_ring_laws(&samples);
    }

    #[test]
    fn tropical_laws(xs in proptest::collection::vec(0u64..40, 1..6)) {
        let mut samples: Vec<MinPlus> = xs.into_iter().map(MinPlus).collect();
        samples.push(MinPlus::INF);
        laws::check_semiring_laws(&samples);
    }

    #[test]
    fn poly_laws(ids in proptest::collection::vec(0u64..6, 1..4)) {
        let mut samples: Vec<Poly> = ids.iter().map(|&i| Poly::var(Gen(i))).collect();
        samples.push(Poly::zero());
        samples.push(Poly::one());
        if samples.len() >= 2 {
            let prod = samples[0].mul(&samples[1]);
            samples.push(prod);
        }
        laws::check_semiring_laws(&samples);
    }
}

// ---------------------------------------------------------------
// Permanent algorithms agree under arbitrary matrices and updates
// ---------------------------------------------------------------

fn arb_matrix(k: usize, n: usize) -> impl Strategy<Value = Vec<Vec<u64>>> {
    proptest::collection::vec(proptest::collection::vec(0u64..5, n), k)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn streaming_equals_naive(rows in arb_matrix(3, 6)) {
        let m = ColMatrix::from_rows(
            &rows.iter().map(|r| r.iter().map(|&x| Nat(x)).collect()).collect::<Vec<_>>(),
        );
        prop_assert_eq!(perm_streaming(&m), perm_naive(&m));
    }

    #[test]
    fn dynamic_structures_agree_after_updates(
        rows in arb_matrix(2, 5),
        updates in proptest::collection::vec((0usize..2, 0usize..5, 0u64..5), 0..12),
    ) {
        let nat = ColMatrix::from_rows(
            &rows.iter().map(|r| r.iter().map(|&x| Nat(x)).collect()).collect::<Vec<_>>(),
        );
        let int = ColMatrix::from_rows(
            &rows.iter().map(|r| r.iter().map(|&x| Int(x as i64)).collect()).collect::<Vec<_>>(),
        );
        let mut seg = SegTreePerm::build(nat.clone());
        let mut ring = RingPerm::build(int.clone());
        let mut shadow_nat = nat;
        for (r, c, v) in updates {
            seg.update(r, c, Nat(v));
            ring.update(r, c, Int(v as i64));
            shadow_nat.set(r, c, Nat(v));
            let expect = perm_naive(&shadow_nat);
            prop_assert_eq!(seg.total(), &expect);
            prop_assert_eq!(ring.total(), Int(expect.0 as i64));
        }
    }

    #[test]
    fn finite_perm_tracks_bool(
        rows in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 5), 3),
        updates in proptest::collection::vec((0usize..3, 0usize..5, any::<bool>()), 0..10),
    ) {
        let m = ColMatrix::from_rows(
            &rows.iter().map(|r| r.iter().map(|&x| Bool(x)).collect()).collect::<Vec<_>>(),
        );
        let mut fin = FinitePerm::build(m.clone());
        let mut shadow = m;
        for (r, c, v) in updates {
            fin.update(r, c, Bool(v));
            shadow.set(r, c, Bool(v));
            prop_assert_eq!(fin.total(), perm_naive(&shadow));
        }
    }
}

// ---------------------------------------------------------------
// Full pipeline vs baseline on arbitrary structures and queries
// ---------------------------------------------------------------

#[derive(Debug, Clone)]
struct Instance {
    n: usize,
    edges: Vec<(u32, u32)>,
    weights: Vec<u64>,
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    (4usize..11).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        (
            Just(n),
            proptest::collection::vec(edge, 0..2 * n),
            proptest::collection::vec(0u64..4, n),
        )
            .prop_map(|(n, edges, weights)| Instance { n, edges, weights })
    })
}

fn build(
    inst: &Instance,
) -> (
    Arc<Structure>,
    sparse_agg::structure::RelId,
    sparse_agg::structure::WeightId,
) {
    let mut sig = Signature::new();
    let e = sig.add_relation("E", 2);
    let w = sig.add_weight("w", 1);
    let mut a = Structure::new(Arc::new(sig), inst.n);
    for &(u, v) in &inst.edges {
        a.insert(e, &[u, v]);
    }
    (Arc::new(a), e, w)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Σ_{x,y} [E(x,y) ∧ x≠y] · w(x) · w(y) agrees with brute force on
    /// arbitrary structures, through compilation and dynamic evaluation.
    #[test]
    fn pipeline_matches_bruteforce(inst in arb_instance()) {
        let (a, e, wsym) = build(&inst);
        let (x, y) = (Var(0), Var(1));
        let expr: Expr<Nat> = Expr::Mul(vec![
            Expr::Bracket(Formula::Rel(e, vec![x, y]).and(Formula::neq(x, y))),
            Expr::Weight(wsym, vec![x]),
            Expr::Weight(wsym, vec![y]),
        ])
        .sum_over([x, y]);
        let mut weights: WeightedStructure<Nat> = WeightedStructure::new(a.clone());
        for (i, &v) in inst.weights.iter().enumerate() {
            weights.set(wsym, &[i as u32], Nat(v));
        }
        let nf = normalize(&expr).unwrap();
        let compiled = compile(&a, &nf, &CompileOptions::default()).unwrap();
        let engine = GeneralEngine::new(compiled, &weights);
        prop_assert_eq!(engine.value(), &baseline::eval_closed(&expr, &weights));
    }

    /// The Theorem 24 enumerator yields exactly the brute-force answer
    /// set, without duplicates, on arbitrary structures.
    #[test]
    fn enumeration_matches_bruteforce(inst in arb_instance()) {
        use sparse_agg::enumerate::AnswerIndex;
        let (a, e, _) = build(&inst);
        let (x, y) = (Var(0), Var(1));
        let phi = Formula::Rel(e, vec![x, y]).and(Formula::neq(x, y));
        let ix = AnswerIndex::build(&a, &phi, &CompileOptions::default()).unwrap();
        let mut got = Vec::new();
        let mut it = ix.iter();
        while let Some(t) = it.next() {
            got.push(t);
        }
        got.sort();
        let mut dedup = got.clone();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), got.len(), "duplicates");
        let mut expect = baseline::all_answers(&phi, &a);
        expect.sort();
        prop_assert_eq!(got, expect);
    }

    /// Normalization preserves semantics: the normalized sum of terms,
    /// evaluated naively, equals the original expression.
    #[test]
    fn normalization_is_sound(inst in arb_instance()) {
        let (a, e, wsym) = build(&inst);
        let (x, y) = (Var(0), Var(1));
        // (Σ_x w(x))·(Σ_y [E(x→shadowed…)]) exercises renaming; keep a
        // moderately gnarly expression:
        let expr: Expr<Nat> = Expr::Weight(wsym, vec![x])
            .sum_over([x])
            .times(
                Expr::Bracket(Formula::Rel(e, vec![x, y]).or(Formula::Eq(x, y)))
                    .sum_over([x, y]),
            )
            .plus(Expr::Const(Nat(2)));
        let mut weights: WeightedStructure<Nat> = WeightedStructure::new(a.clone());
        for (i, &v) in inst.weights.iter().enumerate() {
            weights.set(wsym, &[i as u32], Nat(v));
        }
        let nf = normalize(&expr).unwrap();
        let compiled = compile(&a, &nf, &CompileOptions::default()).unwrap();
        let engine = GeneralEngine::new(compiled, &weights);
        prop_assert_eq!(engine.value(), &baseline::eval_closed(&expr, &weights));
    }
}
