//! The paper's central structural claim, tested at the API level: the
//! *same compiled circuit* (Theorem 6) evaluates correctly in every
//! commutative semiring — counting, optimization, existence, parity,
//! probability, and provenance all come from one compilation.

use sparse_agg::core_engine::SlotKey;
use sparse_agg::graph::generators;
use sparse_agg::prelude::*;
use sparse_agg::semiring::{Mod, Pair};
use std::sync::Arc;

/// Compile the weighted 2-path query once; evaluate the one circuit in
/// six semirings by remapping only the input values.
#[test]
fn one_circuit_six_semirings() {
    let n = 120;
    let g = generators::gnm(n, 2 * n, 13);
    let mut sig = Signature::new();
    let e = sig.add_relation("E", 2);
    let c = sig.add_weight("c", 2);
    let mut a = Structure::new(Arc::new(sig), n);
    for (u, v) in g.edges() {
        a.insert(e, &[u, v]);
        a.insert(e, &[v, u]);
    }
    let a = Arc::new(a);

    let (x, y, z) = (Var(0), Var(1), Var(2));
    let phi = Formula::Rel(e, vec![x, y])
        .and(Formula::Rel(e, vec![y, z]))
        .and(Formula::neq(x, z));
    let expr: Expr<Nat> = Expr::Mul(vec![
        Expr::Bracket(phi.clone()),
        Expr::Weight(c, vec![x, y]),
        Expr::Weight(c, vec![y, z]),
    ])
    .sum_over([x, y, z]);
    let nf = normalize(&expr).unwrap();
    let compiled = compile(&a, &nf, &CompileOptions::default()).unwrap();
    let circuit = compiled.circuit.clone();
    assert_eq!(compiled.lits.len(), 0, "coefficient-free query");

    // per-edge base weight: a small deterministic integer ≥ 1
    let base = |t: &[u32]| u64::from((t[0] * 7 + t[1] * 3) % 5 + 1);
    fn map_slots<S>(
        slots: &sparse_agg::core_engine::SlotRegistry,
        f: impl Fn(&[u32]) -> S,
    ) -> Vec<S> {
        slots
            .iter()
            .map(|(_, key)| match key {
                SlotKey::Weight(_, t) => f(t.as_slice()),
                _ => unreachable!("closed static query has only weight slots"),
            })
            .collect()
    }

    // ℕ: weighted count
    let nat_slots: Vec<Nat> = map_slots(&compiled.slots, |t| Nat(base(t)));
    let count = circuit.eval(&nat_slots, &[]);

    // ℤ: must agree with ℕ embedded
    let int_slots: Vec<Int> = compiled
        .slots
        .iter()
        .map(|(s, _)| Int(nat_slots[s as usize].0 as i64))
        .collect();
    assert_eq!(circuit.eval(&int_slots, &[]).0 as u64, count.0);

    // ℤ/7: must agree with ℕ reduced mod 7 (homomorphism property)
    let mod_slots: Vec<Mod> = compiled
        .slots
        .iter()
        .map(|(s, _)| Mod::new(nat_slots[s as usize].0, 7))
        .collect();
    assert_eq!(circuit.eval(&mod_slots, &[]).value(), count.0 % 7);

    // B: existence = (count ≠ 0)
    let bool_slots: Vec<Bool> = compiled
        .slots
        .iter()
        .map(|(s, _)| Bool(nat_slots[s as usize].0 != 0))
        .collect();
    assert_eq!(circuit.eval(&bool_slots, &[]).0, count.0 != 0);

    // (min,+): cheapest 2-path; check against a direct graph scan
    let min_slots: Vec<MinPlus> = map_slots(&compiled.slots, |t| MinPlus(base(t)));
    let cheapest = circuit.eval(&min_slots, &[]);
    let mut direct = MinPlus::INF;
    for u in 0..n as u32 {
        for &v in g.neighbors(u) {
            for &w2 in g.neighbors(v) {
                if w2 != u {
                    let cost = base(&[u, v]) + base(&[v, w2]);
                    direct = direct.add(&MinPlus(cost));
                }
            }
        }
    }
    assert_eq!(cheapest, direct);

    // Pair(ℕ, min+): both aggregates in one pass
    let pair_slots: Vec<Pair<Nat, MinPlus>> = compiled
        .slots
        .iter()
        .map(|(s, _)| Pair(nat_slots[s as usize], min_slots[s as usize]))
        .collect();
    let both = circuit.eval(&pair_slots, &[]);
    assert_eq!(both.0, count);
    assert_eq!(both.1, cheapest);

    // Free semiring: the number of monomials (with multiplicity) equals
    // the ℕ count under all-ones weights.
    let ones: Vec<Nat> = compiled.slots.iter().map(|_| Nat(1)).collect();
    let plain_count = circuit.eval(&ones, &[]);
    let poly_slots: Vec<Poly> = compiled
        .slots
        .iter()
        .map(|(s, _)| {
            Poly::var(Gen(s as u64)) // unique generator per input
        })
        .collect();
    let poly = circuit.eval(&poly_slots, &[]);
    assert_eq!(poly.total_multiplicity(), plain_count.0);
}

/// Probability semantics (Example 4): with weights forming a probability
/// distribution, the query value is the probability that a random tuple
/// satisfies φ — checked against direct computation in ℚ (exact).
#[test]
fn probability_of_random_edge() {
    let n = 12;
    let g = generators::gnm(n, 20, 3);
    let mut sig = Signature::new();
    let e = sig.add_relation("E", 2);
    let p1 = sig.add_weight("p1", 1);
    let p2 = sig.add_weight("p2", 1);
    let mut a = Structure::new(Arc::new(sig), n);
    for (u, v) in g.edges() {
        a.insert(e, &[u, v]);
    }
    let a = Arc::new(a);
    // uniform distributions
    let (x, y) = (Var(0), Var(1));
    let expr: Expr<Rat> = Expr::Mul(vec![
        Expr::Bracket(Formula::Rel(e, vec![x, y])),
        Expr::Weight(p1, vec![x]),
        Expr::Weight(p2, vec![y]),
    ])
    .sum_over([x, y]);
    let mut w: WeightedStructure<Rat> = WeightedStructure::new(a.clone());
    for v in 0..n as u32 {
        w.set(p1, &[v], Rat::new(1, n as i64));
        w.set(p2, &[v], Rat::new(1, n as i64));
    }
    let nf = normalize(&expr).unwrap();
    let compiled = compile(&a, &nf, &CompileOptions::default()).unwrap();
    let engine = RingEngine::new(compiled, &w);
    // P(edge) = m / n²  exactly
    let m = a.relation(e).len() as i64;
    assert_eq!(*engine.value(), Rat::new(m, (n * n) as i64));
}
