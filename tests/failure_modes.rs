//! Failure injection: every documented error path is a typed error with
//! an actionable message — never a wrong answer, panic from library
//! internals, or silent degradation.

use sparse_agg::logic::{parse_expr, parse_formula};
use sparse_agg::nested::{
    Connective, MultiWeights, NestedEvaluator, NestedFormula, SemiringTag, TypeError, Value,
};
use sparse_agg::prelude::*;
use std::sync::Arc;

fn sig() -> Signature {
    let mut s = Signature::new();
    s.add_relation("E", 2);
    s.add_weight("w", 1);
    s
}

fn small_graph() -> Structure {
    let s = sig();
    let e = s.relation("E").unwrap();
    let mut a = Structure::new(Arc::new(s), 6);
    for i in 0..5u32 {
        a.insert(e, &[i, i + 1]);
    }
    a
}

#[test]
fn unguarded_two_variable_quantifier_is_rejected() {
    use sparse_agg::core_engine::{eliminate_quantifiers, CompileError};
    let a = small_graph();
    let e = a.signature().relation("E").unwrap();
    // [∃z (E(x,z) ∧ E(z,y))] has two free variables — outside the
    // guarded fragment we substitute for Theorem 3.
    let inner = Formula::Exists(
        Var(2),
        Box::new(Formula::Rel(e, vec![Var(0), Var(2)]).and(Formula::Rel(e, vec![Var(2), Var(1)]))),
    );
    let expr: Expr<Nat> = Expr::Bracket(inner).sum_over([Var(0), Var(1)]);
    let err = eliminate_quantifiers(&expr, &a, &CompileOptions::default()).unwrap_err();
    assert!(matches!(err, CompileError::UnsupportedQuantifier { .. }));
    assert!(err.to_string().contains("free variables"));
}

#[test]
fn shape_cap_is_a_structured_error() {
    use sparse_agg::core_engine::CompileError;
    let a = small_graph();
    let wsym = a.signature().weight("w").unwrap();
    // Four unlinked variables force the full shape space.
    let expr: Expr<Nat> = Expr::Mul(vec![
        Expr::Weight(wsym, vec![Var(0)]),
        Expr::Weight(wsym, vec![Var(1)]),
        Expr::Weight(wsym, vec![Var(2)]),
    ])
    .sum_over([Var(0), Var(1), Var(2)]);
    let nf = normalize(&expr).unwrap();
    let opts = CompileOptions {
        max_shapes: 3,
        ..CompileOptions::default()
    };
    match compile(&a, &nf, &opts) {
        Err(CompileError::TooManyShapes { cap }) => assert_eq!(cap, 3),
        other => panic!("expected shape-cap error, got {other:?}"),
    }
}

#[test]
fn off_support_weight_is_rejected_by_the_store() {
    let s = {
        let mut s = Signature::new();
        s.add_relation("E", 2);
        s.add_weight("c", 2);
        s
    };
    let e = s.relation("E").unwrap();
    let c = s.weight("c").unwrap();
    let mut a = Structure::new(Arc::new(s), 4);
    a.insert(e, &[0, 1]);
    let mut w: WeightedStructure<Nat> = WeightedStructure::new(Arc::new(a));
    let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        w.set(c, &[2, 3], Nat(5)); // (2,3) is in no relation
    }));
    assert!(panic.is_err(), "off-support weights must be rejected");
}

#[test]
fn parse_errors_carry_position_and_cause() {
    let s = sig();
    let err = parse_expr::<Nat>("sum x. [E(x)]", &s, |t| t.parse().ok().map(Nat)).unwrap_err();
    assert!(err.message.contains("arity"), "{err}");
    let err = parse_formula("E(x,y) &", &s).unwrap_err();
    assert!(err.at >= 8, "position should point at the hole: {err}");
    let err = parse_expr::<Nat>("unknown(x)", &s, |t| t.parse().ok().map(Nat)).unwrap_err();
    assert!(err.message.contains("unknown weight symbol"), "{err}");
}

#[test]
fn nested_type_errors_are_precise() {
    // mixing ℕ and ℤ in one addition
    let f = NestedFormula::Add(vec![
        NestedFormula::Const(Value::N(Nat(1))),
        NestedFormula::Const(Value::Z(Int(1))),
    ]);
    assert!(matches!(f.tag(), Err(TypeError::TagMismatch { .. })));

    // a connective argument whose free variable escapes the guard
    let a = small_graph();
    let e = a.signature().relation("E").unwrap();
    let w = a.signature().weight("w").unwrap();
    let leaky = NestedFormula::Guarded {
        guard: e,
        guard_args: vec![Var(0), Var(1)],
        connective: Connective::new("id", vec![SemiringTag::N], SemiringTag::N, |v| v[0]),
        args: vec![NestedFormula::SAtom {
            weight: w,
            tag: SemiringTag::N,
            args: vec![Var(7)],
        }],
    };
    let err = match NestedEvaluator::build(
        &a,
        &MultiWeights::new(),
        &NestedFormula::Sum(vec![Var(0), Var(1)], Box::new(leaky)),
        &CompileOptions::default(),
    ) {
        Err(e) => e,
        Ok(_) => panic!("expected an unguarded-variable error"),
    };
    assert!(err.to_string().contains("not covered"), "{err}");
}

#[test]
fn query_arity_mismatch_panics_with_message() {
    let a = small_graph();
    let e = a.signature().relation("E").unwrap();
    let expr: Expr<Nat> = Expr::Bracket(Formula::Rel(e, vec![Var(0), Var(1)])).sum_over([Var(0)]);
    let nf = normalize(&expr).unwrap();
    let compiled = compile(&a, &nf, &CompileOptions::default()).unwrap();
    let w: WeightedStructure<Nat> = WeightedStructure::new(Arc::new(a));
    let mut engine = GeneralEngine::new(compiled, &w);
    let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = engine.query(&[0, 1]); // one free var, two elements
    }));
    assert!(panic.is_err());
}

#[test]
fn querying_out_of_domain_elements_is_zero_not_panic() {
    // An element id that exists in the domain but has no compatible
    // placement (e.g. isolated) yields a structural zero.
    let s = sig();
    let e = s.relation("E").unwrap();
    let mut a = Structure::new(Arc::new(s), 5);
    a.insert(e, &[0, 1]); // elements 2..4 isolated
    let expr: Expr<Nat> = Expr::Bracket(Formula::Rel(e, vec![Var(0), Var(1)])).sum_over([Var(0)]);
    let nf = normalize(&expr).unwrap();
    let compiled = compile(&a, &nf, &CompileOptions::default()).unwrap();
    let w: WeightedStructure<Nat> = WeightedStructure::new(Arc::new(a));
    let mut engine = GeneralEngine::new(compiled, &w);
    assert_eq!(engine.query(&[4]), Nat(0));
    assert_eq!(engine.query(&[1]), Nat(1));
}

#[test]
fn dynamic_index_rejects_non_clique_insertions() {
    use sparse_agg::enumerate::{AnswerIndex, UpdateError};
    let a = small_graph();
    let e = a.signature().relation("E").unwrap();
    let phi = Formula::Rel(e, vec![Var(0), Var(1)]);
    let mut ix = AnswerIndex::build_dynamic(&a, &phi, &CompileOptions::default()).unwrap();
    // (0,5) is not a Gaifman edge of the path
    assert_eq!(
        ix.set_tuple(e, &[0, 5], true),
        Err(UpdateError::NotGaifmanPreserving)
    );
    // a static index rejects updates entirely
    let mut ix2 = AnswerIndex::build(&a, &phi, &CompileOptions::default()).unwrap();
    assert_eq!(
        ix2.set_tuple(e, &[0, 1], false),
        Err(UpdateError::StaticIndex)
    );
}
